"""DB-API-flavoured connections and cursors over the simulated drivers.

``connect()`` performs the full vendor handshake — URL sniff, directory
lookup, credential check — and charges the dialect's connect+auth cost
to the supplied virtual clock. The prototype in the paper opens a fresh
connection per (query, database) with no pooling; the >10× response-time
penalty of distributed queries in Table 1 comes largely from here.
"""

from __future__ import annotations

from repro.common.errors import DriverError
from repro.driver.directory import Directory, GLOBAL_DIRECTORY
from repro.driver.url import sniff_vendor
from repro.engine.database import Database, ExecResult


class _NullClock:
    """Clock stub used when no virtual clock is supplied."""

    def advance_ms(self, ms: float) -> None:  # pragma: no cover - trivial
        """No-op time sink for unclocked connections."""
        pass


class Cursor:
    """Executes statements on one connection; DB-API fetch surface."""

    def __init__(self, connection: "Connection"):
        self.connection = connection
        self._result: ExecResult | None = None
        self._fetch_pos = 0
        self.arraysize = 100

    # -- execution -------------------------------------------------------------

    def execute(self, sql: str, params: tuple = ()) -> "Cursor":
        """Run one statement and expose its result on this cursor."""
        conn = self.connection
        if conn.closed:
            raise DriverError("cursor used after connection close")
        cost = conn.dialect.cost
        conn.clock.advance_ms(cost.per_statement_ms)
        result = conn.database.execute(sql, params)
        # Scan cost is charged for rows the engine actually examined.
        conn.clock.advance_ms(result.stats.rows_examined * cost.per_row_scan_us / 1000.0)
        if result.rowcount and not result.rows:
            # DML: inserts/updates pay per-row write cost plus a commit.
            conn.clock.advance_ms(result.rowcount * cost.per_row_insert_ms)
            conn.clock.advance_ms(cost.commit_ms)
        self._result = result
        self._fetch_pos = 0
        return self

    # -- results ----------------------------------------------------------------

    @property
    def description(self) -> list[tuple] | None:
        """DB-API 7-tuples describing the current result columns."""
        if self._result is None or not self._result.columns:
            return None
        return [
            (name, str(ctype), None, None, None, None, None)
            for name, ctype in zip(self._result.columns, self._result.types)
        ]

    @property
    def rowcount(self) -> int:
        """Affected/returned row count of the last statement (-1 before any)."""
        if self._result is None:
            return -1
        return self._result.rowcount

    @property
    def columns(self) -> list[str]:
        """Column names of the current result set."""
        return [] if self._result is None else list(self._result.columns)

    @property
    def types(self) -> list:
        """Logical column types of the current result set."""
        return [] if self._result is None else list(self._result.types)

    def fetchone(self) -> tuple | None:
        """Next row of the result set, or None when exhausted."""
        if self._result is None:
            raise DriverError("fetch before execute")
        if self._fetch_pos >= len(self._result.rows):
            return None
        row = self._result.rows[self._fetch_pos]
        self._fetch_pos += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        """Up to ``size`` rows (default ``arraysize``)."""
        if self._result is None:
            raise DriverError("fetch before execute")
        size = size or self.arraysize
        rows = self._result.rows[self._fetch_pos : self._fetch_pos + size]
        self._fetch_pos += len(rows)
        return rows

    def fetchall(self) -> list[tuple]:
        """Every remaining row of the result set."""
        if self._result is None:
            raise DriverError("fetch before execute")
        rows = self._result.rows[self._fetch_pos :]
        self._fetch_pos = len(self._result.rows)
        return rows

    def __iter__(self):
        """Iterate remaining rows, DB-API style."""
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def close(self) -> None:
        """Release this object; it must not be used afterwards."""
        self._result = None


class Connection:
    """One authenticated session against one vendor database."""

    def __init__(self, binding, dialect, clock):
        self._binding = binding
        self.dialect = dialect
        self.clock = clock
        self.closed = False

    @property
    def database(self) -> Database:
        """The engine instance this connection is bound to."""
        return self._binding.database

    @property
    def url(self) -> str:
        """The connection URL this session was opened against."""
        return self._binding.url

    @property
    def vendor(self) -> str:
        """Vendor (dialect) name of the connected database."""
        return self.dialect.name

    def cursor(self) -> Cursor:
        """A new cursor over this connection."""
        if self.closed:
            raise DriverError("connection is closed")
        return Cursor(self)

    def execute(self, sql: str, params: tuple = ()) -> Cursor:
        """Convenience: cursor + execute in one call."""
        return self.cursor().execute(sql, params)

    def close(self) -> None:
        """Release this object; it must not be used afterwards."""
        self.closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(
    url: str,
    user: str = "grid",
    password: str = "grid",
    directory: Directory | None = None,
    clock=None,
) -> Connection:
    """Open a connection to the database serving ``url``.

    Charges the vendor's connect and authentication latency to ``clock``
    (any object with ``advance_ms``); with no clock the call is free,
    which is what unit tests want.
    """
    directory = directory or GLOBAL_DIRECTORY
    clock = clock or _NullClock()
    dialect, _parsed = sniff_vendor(url)
    binding = directory.lookup(url)
    clock.advance_ms(dialect.cost.connect_ms)
    binding.check_credentials(user, password)
    clock.advance_ms(dialect.cost.auth_ms)
    return Connection(binding, dialect, clock)

"""Directory of live database instances addressable by connection URL.

The directory plays the role of the network's name service plus the
vendor server processes: registering a binding is the simulated
equivalent of starting a database server on some grid host. Tests and
federations usually build private directories; ``GLOBAL_DIRECTORY`` is
the default for small scripts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AuthenticationError, ConnectionFailedError, DuplicateObjectError
from repro.engine.database import Database


@dataclass
class DatabaseBinding:
    """One registered database server endpoint."""

    url: str
    database: Database
    user: str = "grid"
    password: str = "grid"
    host_name: str = "localhost"

    def check_credentials(self, user: str, password: str) -> None:
        if user != self.user or password != self.password:
            raise AuthenticationError(
                f"credentials rejected for {self.url!r} (user {user!r})"
            )


class Directory:
    """URL → binding map with exact-match lookup."""

    def __init__(self) -> None:
        self._bindings: dict[str, DatabaseBinding] = {}

    def register(
        self,
        url: str,
        database: Database,
        user: str = "grid",
        password: str = "grid",
        host_name: str = "localhost",
        replace: bool = False,
    ) -> DatabaseBinding:
        if url in self._bindings and not replace:
            raise DuplicateObjectError(f"URL {url!r} already registered")
        binding = DatabaseBinding(url, database, user, password, host_name)
        self._bindings[url] = binding
        return binding

    def unregister(self, url: str) -> None:
        self._bindings.pop(url, None)

    def lookup(self, url: str) -> DatabaseBinding:
        binding = self._bindings.get(url)
        if binding is None:
            raise ConnectionFailedError(f"no database is serving URL {url!r}")
        return binding

    def urls(self) -> list[str]:
        return sorted(self._bindings)

    def clear(self) -> None:
        self._bindings.clear()


#: Default directory for scripts and examples.
GLOBAL_DIRECTORY = Directory()

"""JDBC connection pooling.

The prototype's dominant distributed-query cost is the fresh
connect+authenticate per (query, database) on the Unity/JDBC path —
Table 1's >10× penalty. Pooling is the era's standard fix; this module
implements it so the routing ablation can quantify exactly how much of
the paper's penalty is connection churn.

Pooled connections are keyed by (url, user); ``get`` hands out an open
connection or dials a new one; ``release`` returns it for reuse. A
``max_idle_per_key`` bound keeps the pool honest, and closed/broken
connections are discarded on return.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.driver.connection import Connection, connect
from repro.driver.directory import Directory


@dataclass
class PoolStats:
    hits: int = 0
    misses: int = 0
    discarded: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ConnectionPool:
    """A simple keyed pool of open driver connections."""

    def __init__(
        self,
        directory: Directory,
        clock=None,
        max_idle_per_key: int = 4,
    ):
        self.directory = directory
        self.clock = clock
        self.max_idle_per_key = max_idle_per_key
        self._idle: dict[tuple[str, str], list[Connection]] = {}
        self.stats = PoolStats()

    def get(self, url: str, user: str = "grid", password: str = "grid") -> Connection:
        """An open connection for ``url`` — pooled if available."""
        key = (url, user)
        bucket = self._idle.get(key)
        while bucket:
            conn = bucket.pop()
            if not conn.closed:
                self.stats.hits += 1
                return conn
            self.stats.discarded += 1
        self.stats.misses += 1
        return connect(
            url, user, password, directory=self.directory, clock=self.clock
        )

    def release(self, connection: Connection, user: str = "grid") -> None:
        """Return a connection for reuse (or drop it if full/broken)."""
        if connection.closed:
            self.stats.discarded += 1
            return
        key = (connection.url, user)
        bucket = self._idle.setdefault(key, [])
        if len(bucket) >= self.max_idle_per_key:
            connection.close()
            self.stats.discarded += 1
            return
        bucket.append(connection)

    def idle_count(self) -> int:
        return sum(len(b) for b in self._idle.values())

    def close_all(self) -> None:
        for bucket in self._idle.values():
            for conn in bucket:
                conn.close()
        self._idle.clear()

"""SQLite dialect — the disconnected-laptop mart vendor.

Quirks modeled: file-path connection URL (``jdbc:sqlite:/path``), no
server round-trip (connect cost is just opening the file), dynamic
typing flattened to the classic affinities, native LIMIT.
"""

from __future__ import annotations

from repro.common.errors import ConnectionFailedError
from repro.common.types import TypeKind
from repro.dialects.base import ConnectionURL, CostProfile, Dialect


class SQLiteDialect(Dialect):
    name = "sqlite"
    display_name = "SQLite"
    quote_char = '"'
    limit_style = "limit"
    supports_multirow_insert = True
    pool_supported = True
    default_port = 0  # no server
    url_scheme = "jdbc:sqlite"
    cost = CostProfile(
        connect_ms=6.0,
        auth_ms=0.0,
        per_row_scan_us=1.5,
        per_row_insert_ms=0.25,
        per_statement_ms=0.5,
        commit_ms=12.0,  # fsync-per-commit dominates
    )
    # SQLite of the era has no math extension and no aggregate moments.
    unsupported_functions = frozenset(
        {"SQRT", "POWER", "EXP", "LN", "LOG10", "FLOOR", "CEIL", "SIGN",
         "MOD", "STDDEV", "VARIANCE", "CONCAT", "INSTR"}
    )

    _TYPE_NAMES = {
        TypeKind.INTEGER: "INTEGER",
        TypeKind.BIGINT: "INTEGER",
        TypeKind.FLOAT: "REAL",
        TypeKind.DOUBLE: "REAL",
        TypeKind.DECIMAL: "NUMERIC({p},{s})",
        TypeKind.VARCHAR: "TEXT",
        TypeKind.CHAR: "TEXT",
        TypeKind.TEXT: "TEXT",
        TypeKind.BOOLEAN: "INTEGER",
        TypeKind.DATE: "TEXT",
        TypeKind.TIMESTAMP: "TEXT",
        TypeKind.BLOB: "BLOB",
    }

    def make_url(self, host: str, port: int | None, database: str) -> str:
        # host is kept for symmetry with the other vendors; a SQLite URL
        # addresses a file on that host's filesystem.
        return f"{self.url_scheme}:/{host}/{database}.db"

    def parse_url(self, url: str) -> ConnectionURL:
        prefix = f"{self.url_scheme}:/"
        if not url.startswith(prefix):
            raise ConnectionFailedError(f"URL {url!r} does not match SQLite scheme")
        rest = url[len(prefix):]
        if "/" not in rest:
            raise ConnectionFailedError(f"URL {url!r} is missing a database path")
        host, filename = rest.split("/", 1)
        if not filename.endswith(".db"):
            raise ConnectionFailedError(f"URL {url!r} must end in '.db'")
        database = filename[: -len(".db")]
        if not host or not database:
            raise ConnectionFailedError(f"URL {url!r} is missing host or database")
        return ConnectionURL(self.name, host, 0, database)

"""Vendor dialect personalities.

The paper's testbed mixes Oracle (Tier-0/1), MySQL (Tier-2 sources and
marts), Microsoft SQL Server (marts) and SQLite (disconnected-analysis
marts). A :class:`~repro.dialects.base.Dialect` captures everything the
middleware must bridge per vendor: type-name mapping in both directions,
identifier quoting, limit syntax, multi-row INSERT support, connection
URL grammar, POOL-RAL supportability, and the latency cost profile used
by the simulated testbed.
"""

from repro.dialects.base import CostProfile, Dialect
from repro.dialects.registry import available_vendors, get_dialect, register_dialect

__all__ = [
    "CostProfile",
    "Dialect",
    "available_vendors",
    "get_dialect",
    "register_dialect",
]

"""Dialect registry: vendor-name → singleton dialect instance.

Registration is open so tests (and the plug-in database mechanism,
§4.10) can add synthetic vendors at runtime.
"""

from __future__ import annotations

from repro.common.errors import DuplicateObjectError, UnsupportedVendorError
from repro.dialects.base import Dialect
from repro.dialects.mssql import MSSQLDialect
from repro.dialects.mysql import MySQLDialect
from repro.dialects.oracle import OracleDialect
from repro.dialects.sqlite import SQLiteDialect

_REGISTRY: dict[str, Dialect] = {}


def register_dialect(dialect: Dialect, replace: bool = False) -> None:
    """Register a dialect instance under its ``name``."""
    key = dialect.name.lower()
    if key in _REGISTRY and not replace:
        raise DuplicateObjectError(f"dialect {dialect.name!r} already registered")
    _REGISTRY[key] = dialect


def get_dialect(vendor: str) -> Dialect:
    """Dialect for ``vendor``; raises :class:`UnsupportedVendorError`."""
    dialect = _REGISTRY.get(vendor.lower())
    if dialect is None:
        raise UnsupportedVendorError(vendor)
    return dialect


def available_vendors() -> list[str]:
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    for dialect in (Dialect(), OracleDialect(), MySQLDialect(), MSSQLDialect(), SQLiteDialect()):
        register_dialect(dialect, replace=True)


_register_builtins()

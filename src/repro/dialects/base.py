"""Dialect base class and the vendor cost profile.

A dialect never executes anything itself; it renders SQL *text* in the
vendor's surface syntax and maps types both ways. The engine parser
accepts every vendor spelling a dialect can emit, so vendor DDL/DML
round-trips through the engine — this is the "N technologies" half of
the paper's N×S argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConnectionFailedError, SQLTypeError
from repro.common.types import SQLType, TypeKind, sql_repr
from repro.sql import ast


@dataclass(frozen=True)
class CostProfile:
    """Latency constants (milliseconds unless noted) for one vendor.

    Fitted so the simulated testbed reproduces the paper's Table 1 and
    Figures 4-6 shapes; see ``repro/net/costs.py`` for the fit notes.
    """

    connect_ms: float
    auth_ms: float
    per_row_scan_us: float
    per_row_insert_ms: float
    per_statement_ms: float
    commit_ms: float


@dataclass(frozen=True)
class ConnectionURL:
    """A parsed vendor connection URL."""

    vendor: str
    host: str
    port: int
    database: str
    user: str | None = None
    password: str | None = None


class Dialect:
    """Base vendor personality; subclasses override the class attributes."""

    name = "generic"
    display_name = "Generic SQL"
    quote_char = '"'
    limit_style = "limit"  # 'limit' | 'top' | 'client'  (client: middleware truncates)
    supports_multirow_insert = True
    pool_supported = True
    default_port = 5432
    url_scheme = "jdbc:generic"
    cost = CostProfile(
        connect_ms=80.0,
        auth_ms=40.0,
        per_row_scan_us=2.0,
        per_row_insert_ms=0.4,
        per_statement_ms=1.0,
        commit_ms=5.0,
    )
    #: Engine function names this vendor (in its paper-era release)
    #: cannot evaluate; the lint pass flags them before a sub-query ships.
    unsupported_functions: frozenset[str] = frozenset()

    def supports_function(self, name: str) -> bool:
        """Whether the vendor can evaluate the (engine-known) function."""
        return name.upper() not in self.unsupported_functions

    # -- identifiers -------------------------------------------------------------

    def quote_ident(self, name: str) -> str:
        if self.quote_char == "[":
            return f"[{name}]"
        return f"{self.quote_char}{name}{self.quote_char}"

    # -- type mapping ------------------------------------------------------------

    #: logical kind -> vendor type-name template; subclasses override entries.
    _TYPE_NAMES: dict[TypeKind, str] = {
        TypeKind.INTEGER: "INTEGER",
        TypeKind.BIGINT: "BIGINT",
        TypeKind.FLOAT: "FLOAT",
        TypeKind.DOUBLE: "DOUBLE",
        TypeKind.DECIMAL: "DECIMAL({p},{s})",
        TypeKind.VARCHAR: "VARCHAR({n})",
        TypeKind.CHAR: "CHAR({n})",
        TypeKind.TEXT: "TEXT",
        TypeKind.BOOLEAN: "BOOLEAN",
        TypeKind.DATE: "DATE",
        TypeKind.TIMESTAMP: "TIMESTAMP",
        TypeKind.BLOB: "BLOB",
    }

    def format_type(self, sql_type: SQLType) -> str:
        """Render a logical type in this vendor's spelling."""
        template = self._TYPE_NAMES.get(sql_type.kind)
        if template is None:
            raise SQLTypeError(f"{self.display_name} cannot represent {sql_type}")
        return template.format(
            n=sql_type.length or 255,
            p=sql_type.precision if sql_type.precision is not None else 38,
            s=sql_type.scale if sql_type.scale is not None else 0,
        )

    # -- statement rendering -------------------------------------------------------

    def render_create_table(self, name: str, columns) -> str:
        """Vendor DDL for a table; ``columns`` are engine Column objects."""
        defs = []
        pk = [c.name for c in columns if c.primary_key]
        for col in columns:
            parts = [self.quote_ident(col.name), self.format_type(col.type)]
            if col.not_null and not col.primary_key:
                parts.append("NOT NULL")
            if col.has_default:
                parts.append(f"DEFAULT {sql_repr(col.default)}")
            defs.append(" ".join(parts))
        if pk:
            defs.append(f"PRIMARY KEY ({', '.join(self.quote_ident(c) for c in pk)})")
        return f"CREATE TABLE {self.quote_ident(name)} ({', '.join(defs)})"

    def render_insert(
        self, table: str, columns: list[str], rows: list[tuple]
    ) -> list[str]:
        """Vendor INSERT statement(s) for ``rows``.

        Vendors without multi-row VALUES (Oracle 9i/10g of the paper's
        era) get one statement per row — this is a real contributor to
        the mart-loading times in Figure 5.
        """
        col_list = ", ".join(self.quote_ident(c) for c in columns)
        head = f"INSERT INTO {self.quote_ident(table)} ({col_list}) VALUES "
        if self.supports_multirow_insert:
            body = ", ".join(
                "(" + ", ".join(sql_repr(v) for v in row) + ")" for row in rows
            )
            return [head + body]
        return [
            head + "(" + ", ".join(sql_repr(v) for v in row) + ")" for row in rows
        ]

    def render_select(self, select: ast.Select) -> str:
        """Render a SELECT in vendor syntax (limit spelling differs)."""
        if select.limit is None or self.limit_style == "limit":
            return select.unparse()
        if self.limit_style == "top":
            inner = ast.Select(
                items=select.items,
                from_=select.from_,
                joins=select.joins,
                where=select.where,
                group_by=select.group_by,
                having=select.having,
                order_by=select.order_by,
                limit=None,
                offset=select.offset,
                distinct=select.distinct,
            )
            text = inner.unparse()
            head = "SELECT DISTINCT" if select.distinct else "SELECT"
            assert text.startswith(head)
            return f"{head} TOP {select.limit}{text[len(head):]}"
        # 'client': the vendor has no portable limit clause; emit the
        # unlimited query — the caller truncates after fetch.
        inner = ast.Select(
            items=select.items,
            from_=select.from_,
            joins=select.joins,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            limit=None,
            offset=select.offset,
            distinct=select.distinct,
        )
        return inner.unparse()

    @property
    def limit_applied_client_side(self) -> bool:
        return self.limit_style == "client"

    # -- connection URLs -------------------------------------------------------------

    def make_url(self, host: str, port: int | None, database: str) -> str:
        port = port or self.default_port
        return f"{self.url_scheme}://{host}:{port}/{database}"

    def parse_url(self, url: str) -> ConnectionURL:
        prefix = f"{self.url_scheme}://"
        if not url.startswith(prefix):
            raise ConnectionFailedError(
                f"URL {url!r} does not match scheme {self.url_scheme!r}"
            )
        rest = url[len(prefix):]
        if "/" not in rest:
            raise ConnectionFailedError(f"URL {url!r} is missing a database name")
        hostport, database = rest.split("/", 1)
        if ":" in hostport:
            host, port_text = hostport.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError:
                raise ConnectionFailedError(f"bad port in URL {url!r}") from None
        else:
            host, port = hostport, self.default_port
        if not host or not database:
            raise ConnectionFailedError(f"URL {url!r} is missing host or database")
        return ConnectionURL(self.name, host, port, database)

"""Microsoft SQL Server dialect — mart vendor on the Windows 2000 box.

Quirks modeled: bracket quoting, ``TOP n`` instead of LIMIT, BIT
booleans, ``NVARCHAR``, semicolon-parameter connection URL
(``jdbc:sqlserver://host:port;databaseName=db``), and — crucially for
the paper's routing logic — **no POOL-RAL support**, so every MS SQL
sub-query must take the Unity/JDBC path.
"""

from __future__ import annotations

from repro.common.errors import ConnectionFailedError
from repro.common.types import TypeKind
from repro.dialects.base import ConnectionURL, CostProfile, Dialect


class MSSQLDialect(Dialect):
    name = "mssql"
    display_name = "Microsoft SQL Server"
    quote_char = "["
    limit_style = "top"
    supports_multirow_insert = False  # pre-2008 SQL Server
    pool_supported = False
    default_port = 1433
    url_scheme = "jdbc:sqlserver"
    cost = CostProfile(
        connect_ms=220.0,
        auth_ms=110.0,
        per_row_scan_us=2.0,
        per_row_insert_ms=0.5,
        per_statement_ms=1.2,
        commit_ms=8.0,
    )
    # T-SQL (SQL Server 2000) spellings differ: LEN, CHARINDEX, CEILING,
    # LOG, SUBSTRING, '+' concatenation, STDEV/VAR, '%' for modulo.
    unsupported_functions = frozenset(
        {"CONCAT", "SUBSTR", "INSTR", "LN", "LENGTH", "TRIM", "MOD",
         "STDDEV", "VARIANCE", "CEIL"}
    )

    _TYPE_NAMES = {
        TypeKind.INTEGER: "INT",
        TypeKind.BIGINT: "BIGINT",
        TypeKind.FLOAT: "REAL",
        TypeKind.DOUBLE: "FLOAT",
        TypeKind.DECIMAL: "DECIMAL({p},{s})",
        TypeKind.VARCHAR: "NVARCHAR({n})",
        TypeKind.CHAR: "CHAR({n})",
        TypeKind.TEXT: "TEXT",
        TypeKind.BOOLEAN: "INT",  # BIT spelled as INT so DDL round-trips
        TypeKind.DATE: "DATETIME",
        TypeKind.TIMESTAMP: "DATETIME",
        TypeKind.BLOB: "BLOB",
    }

    def make_url(self, host: str, port: int | None, database: str) -> str:
        port = port or self.default_port
        return f"{self.url_scheme}://{host}:{port};databaseName={database}"

    def parse_url(self, url: str) -> ConnectionURL:
        prefix = f"{self.url_scheme}://"
        if not url.startswith(prefix):
            raise ConnectionFailedError(
                f"URL {url!r} does not match SQL Server scheme"
            )
        rest = url[len(prefix):]
        if ";databaseName=" not in rest:
            raise ConnectionFailedError(
                f"URL {url!r} is missing ';databaseName='"
            )
        hostport, database = rest.split(";databaseName=", 1)
        if ":" in hostport:
            host, port_text = hostport.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError:
                raise ConnectionFailedError(f"bad port in URL {url!r}") from None
        else:
            host, port = hostport, self.default_port
        if not host or not database:
            raise ConnectionFailedError(f"URL {url!r} is missing host or database")
        return ConnectionURL(self.name, host, port, database)

"""Oracle dialect — the Tier-0 warehouse and Tier-1 source vendor.

Era-accurate quirks modeled: ``NUMBER``-based numerics, ``VARCHAR2``,
no BOOLEAN type (NUMBER(1)), no multi-row ``INSERT ... VALUES``, no
portable LIMIT clause (ROWNUM-era), thin-driver connection URL.
Connection setup is the slowest of the four vendors, matching the heavy
session establishment of the period.
"""

from __future__ import annotations

from repro.common.errors import ConnectionFailedError
from repro.common.types import TypeKind
from repro.dialects.base import ConnectionURL, CostProfile, Dialect


class OracleDialect(Dialect):
    name = "oracle"
    display_name = "Oracle"
    quote_char = '"'
    limit_style = "client"  # ROWNUM wrapping is not portable; middleware truncates
    supports_multirow_insert = False
    pool_supported = True
    default_port = 1521
    url_scheme = "jdbc:oracle:thin"
    cost = CostProfile(
        connect_ms=140.0,
        auth_ms=75.0,
        per_row_scan_us=2.2,
        per_row_insert_ms=0.55,
        per_statement_ms=1.6,
        commit_ms=9.0,
    )
    # Oracle 9i/10g spells log10 as LOG(10, x); plain LOG10 is rejected.
    unsupported_functions = frozenset({"LOG10"})

    _TYPE_NAMES = {
        TypeKind.INTEGER: "NUMBER(10,0)",
        TypeKind.BIGINT: "NUMBER(19,0)",
        TypeKind.FLOAT: "FLOAT",
        TypeKind.DOUBLE: "DOUBLE PRECISION",
        TypeKind.DECIMAL: "NUMBER({p},{s})",
        TypeKind.VARCHAR: "VARCHAR2({n})",
        TypeKind.CHAR: "CHAR({n})",
        TypeKind.TEXT: "CLOB",
        TypeKind.BOOLEAN: "NUMBER(1,0)",
        TypeKind.DATE: "DATE",
        TypeKind.TIMESTAMP: "TIMESTAMP",
        TypeKind.BLOB: "BLOB",
    }

    # Oracle thin URLs use @host:port/service rather than //host:port/db.

    def make_url(self, host: str, port: int | None, database: str) -> str:
        port = port or self.default_port
        return f"{self.url_scheme}:@{host}:{port}/{database}"

    def parse_url(self, url: str) -> ConnectionURL:
        prefix = f"{self.url_scheme}:@"
        if not url.startswith(prefix):
            raise ConnectionFailedError(
                f"URL {url!r} does not match Oracle thin scheme"
            )
        rest = url[len(prefix):]
        if "/" not in rest:
            raise ConnectionFailedError(f"URL {url!r} is missing a service name")
        hostport, database = rest.split("/", 1)
        if ":" in hostport:
            host, port_text = hostport.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError:
                raise ConnectionFailedError(f"bad port in URL {url!r}") from None
        else:
            host, port = hostport, self.default_port
        if not host or not database:
            raise ConnectionFailedError(f"URL {url!r} is missing host or service")
        return ConnectionURL(self.name, host, port, database)

"""MySQL dialect — Tier-2 source and mart vendor.

Quirks modeled: backtick quoting, TINYINT(1) booleans, native LIMIT,
multi-row VALUES, fast connection setup (the classic libmysql handshake
was the lightest of the four vendors).
"""

from __future__ import annotations

from repro.common.types import TypeKind
from repro.dialects.base import CostProfile, Dialect


class MySQLDialect(Dialect):
    name = "mysql"
    display_name = "MySQL"
    quote_char = "`"
    limit_style = "limit"
    supports_multirow_insert = True
    pool_supported = True
    default_port = 3306
    url_scheme = "jdbc:mysql"
    cost = CostProfile(
        connect_ms=140.0,
        auth_ms=60.0,
        per_row_scan_us=1.8,
        per_row_insert_ms=0.35,
        per_statement_ms=0.9,
        commit_ms=6.0,
    )

    _TYPE_NAMES = {
        TypeKind.INTEGER: "INT",
        TypeKind.BIGINT: "BIGINT",
        TypeKind.FLOAT: "FLOAT",
        TypeKind.DOUBLE: "DOUBLE",
        TypeKind.DECIMAL: "DECIMAL({p},{s})",
        TypeKind.VARCHAR: "VARCHAR({n})",
        TypeKind.CHAR: "CHAR({n})",
        TypeKind.TEXT: "TEXT",
        TypeKind.BOOLEAN: "BOOL",
        TypeKind.DATE: "DATE",
        TypeKind.TIMESTAMP: "DATETIME",
        TypeKind.BLOB: "BLOB",
    }

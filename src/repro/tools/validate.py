"""Installation self-check: ``python -m repro.tools.validate``.

Builds a miniature federation and exercises one representative path per
subsystem — engine SQL, dialect DDL round trips, XSpec generation,
POOL/JDBC routing, RLS forwarding, ETL, histogramming — printing OK/FAIL
per check. Exit code 0 only when everything passes; the recommended
first command after installing the package.
"""

from __future__ import annotations

import traceback

CHECKS = []


def check(name):
    def wrap(fn):
        CHECKS.append((name, fn))
        return fn

    return wrap


@check("engine: SQL round trip")
def _engine():
    from repro.engine import Database

    db = Database("v", "generic")
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b DOUBLE)")
    db.execute("INSERT INTO t VALUES (1, 2.5), (2, 3.5)")
    assert db.execute("SELECT SUM(b) FROM t WHERE a IN (SELECT a FROM t)").rows == [(6.0,)]


@check("dialects: vendor DDL round trips")
def _dialects():
    from repro.common import SQLType
    from repro.dialects import available_vendors, get_dialect
    from repro.engine import Column, Database

    for vendor in ("oracle", "mysql", "mssql", "sqlite"):
        assert vendor in available_vendors()
        ddl = get_dialect(vendor).render_create_table(
            "t", [Column("a", SQLType.integer(), primary_key=True)]
        )
        Database("x", vendor).execute(ddl)


@check("metadata: XSpec generate/parse/fingerprint")
def _metadata():
    from repro.engine import Database
    from repro.metadata import LowerXSpec, generate_lower_xspec

    db = Database("m", "mysql")
    db.execute("CREATE TABLE EVT (ID INT PRIMARY KEY)")
    spec = generate_lower_xspec(db)
    assert LowerXSpec.from_xml(spec.to_xml()) == spec
    assert spec.fingerprint() == generate_lower_xspec(db).fingerprint()


@check("federation: POOL + JDBC + RLS routing")
def _federation():
    from repro.core import GridFederation
    from repro.engine import Database

    fed = GridFederation()
    s1 = fed.create_server("jc1", "pc1")
    s2 = fed.create_server("jc2", "pc2")
    mysql = Database("m1", "mysql")
    mysql.execute("CREATE TABLE A (K INT PRIMARY KEY)")
    mysql.execute("INSERT INTO A VALUES (1)")
    fed.attach_database(s1, mysql)
    mssql = Database("m2", "mssql")
    mssql.execute("CREATE TABLE B (K INT PRIMARY KEY)")
    mssql.execute("INSERT INTO B VALUES (1)")
    fed.attach_database(s2, mssql)
    answer = s1.service.execute(
        "SELECT COUNT(*) FROM a x JOIN b y ON x.k = y.k"
    )
    assert answer.rows == [(1,)]
    assert set(answer.routes) == {"pool", "remote"}


@check("lint: static pre-flight analysis")
def _lint():
    from repro.engine import Database
    from repro.lint import CatalogSchema, lint_sql

    db = Database("v", "generic")
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(8))")
    assert lint_sql("SELECT a, b FROM t WHERE a > 1", CatalogSchema(db)).ok
    report = lint_sql("SELECT zz, a + b FROM t", CatalogSchema(db))
    assert report.codes() == {"RPR102", "RPR201"}, report.codes()


@check("warehouse: ETL pivot + verification")
def _warehouse():
    from repro.common import DeterministicRNG
    from repro.engine import Database
    from repro.hep import (
        create_source_schema,
        etl_jobs_for_source,
        generate_ntuple,
        populate_source,
    )
    from repro.net import Network, SimClock
    from repro.warehouse import Warehouse

    rng = DeterministicRNG("validate")
    net = Network()
    net.add_host("tier1", 1)
    src = Database("s", "oracle")
    create_source_schema(src)
    populate_source(src, rng, {1: generate_ntuple(rng.fork("nt"), 10, 3)})
    wh = Warehouse(net, SimClock(), nvar=3)
    job = etl_jobs_for_source(src, "tier1", 3)[0]
    wh.load(job)
    assert wh.row_count("event_fact") == 10
    assert wh.pipeline.verify(job).ok


@check("analysis: server-side histogram")
def _analysis():
    from repro.analysis import histogram_from_wire
    from repro.core import GridFederation
    from repro.engine import Database

    fed = GridFederation()
    server = fed.create_server("jc1", "pc1")
    db = Database("m", "mysql")
    db.execute("CREATE TABLE T (V DOUBLE)")
    for i in range(20):
        db.execute(f"INSERT INTO T VALUES ({i})")
    fed.attach_database(server, db)
    client = fed.client("laptop")
    wire = client.call(server.server, "histogram.h1d", "SELECT v FROM t", "v", 5, 0.0, 20.0)
    assert histogram_from_wire(wire).entries == 20


def main(argv: list[str] | None = None) -> int:
    failed = 0
    for name, fn in CHECKS:
        try:
            fn()
        except Exception:  # noqa: BLE001 - report and continue
            failed += 1
            print(f"FAIL  {name}")
            traceback.print_exc(limit=3)
        else:
            print(f"ok    {name}")
    if failed:
        print(f"{failed} of {len(CHECKS)} checks failed")
        return 1
    print(f"all {len(CHECKS)} checks passed — installation looks good")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

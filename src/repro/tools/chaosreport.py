"""Chaos/resilience report CLI: ``python -m repro.tools.chaosreport``.

Builds a resilient federation ("events" replicated on two database
hosts behind one JClarens server), then drives a scripted
:class:`~repro.resilience.ChaosSchedule` through the virtual clock:
both replica hosts die mid-workload, stay dead long enough for the
circuit breakers to open, and come back later. The workload keeps
querying throughout with ``allow_partial`` on and reports, per phase,
what the client actually saw::

    python -m repro.tools.chaosreport              # human-readable report
    python -m repro.tools.chaosreport --json       # machine-readable report
    python -m repro.tools.chaosreport --json --out BENCH_chaosreport.json
    python -m repro.tools.chaosreport --self-test  # fixture-free CI gate
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.federation import GridFederation
from repro.engine.database import Database
from repro.net import costs
from repro.resilience import BreakerConfig, ChaosSchedule, ResilienceConfig

DEMO_SQL = "SELECT COUNT(*), SUM(energy) FROM events"

#: workload cadence and chaos timeline (all relative, simulated ms).
#: The breaker cooldown is stretched past the blackout so the
#: steady-state window holds pure fast-fails — the (intentionally
#: expensive) half-open probe happens once, during recovery.
QUERY_SPACING_MS = 500.0
BLACKOUT_AT_MS = 1_000.0
RESTORE_AT_MS = 30_000.0
RECOVERY_AT_MS = 55_000.0
BREAKER_COOLDOWN_MS = 30_000.0
CHAOS_QUERIES = 24


def _events_db(name: str, vendor: str = "mysql", n: int = 40) -> Database:
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 0.5})")
    return db


def build_resilient_federation():
    """One resilient server, 'events' replicated on two database hosts."""
    fed = GridFederation()
    config = ResilienceConfig(
        breaker=BreakerConfig(cooldown_ms=BREAKER_COOLDOWN_MS)
    )
    server = fed.create_server(
        "jclarens-a", "tier2a.cern.ch", resilience=config, observe=True
    )
    primary = _events_db("primary_mart")
    # the replica runs a different vendor, so failover re-plans the SQL
    replica = _events_db("replica_mart", vendor="sqlite")
    fed.attach_database(
        server, primary, db_host="db1.cern.ch", logical_names={"EVT": "events"}
    )
    fed.attach_database(
        server, replica, db_host="db2.cern.ch", logical_names={"EVT": "events"}
    )
    return fed, server


def build_report() -> dict:
    """Healthy baseline -> total blackout -> restore -> recovery."""
    fed, server = build_resilient_federation()
    service = server.service

    baseline = service.execute(DEMO_SQL)
    truth = baseline.rows
    base = fed.clock.now_ms

    schedule = (
        ChaosSchedule()
        .fail_host(base + BLACKOUT_AT_MS, "db1.cern.ch")
        .fail_host(base + BLACKOUT_AT_MS, "db2.cern.ch")
        .restore_host(base + RESTORE_AT_MS, "db1.cern.ch")
        .restore_host(base + RESTORE_AT_MS, "db2.cern.ch")
    )
    driver = schedule.driver(fed.network, fed.clock)

    samples = []  # (rel_ms, outcome, latency_ms)
    for _ in range(CHAOS_QUERIES):
        driver.tick()
        t0 = fed.clock.now_ms
        answer = service.execute(DEMO_SQL, allow_partial=True)
        latency = fed.clock.now_ms - t0
        if answer.partial:
            outcome = "partial"
        else:
            outcome = "ok" if answer.rows == truth else "WRONG"
        samples.append((round(t0 - base, 1), outcome, round(latency, 3)))
        fed.clock.advance_ms(QUERY_SPACING_MS)

    # steady state: the tail of the blackout, after the breakers opened
    blackout = [s for s in samples if s[1] == "partial"]
    steady = blackout[len(blackout) // 2 :]

    # recovery: past the restore + breaker cooldown, probes should heal
    if fed.clock.now_ms < base + RECOVERY_AT_MS:
        fed.clock.advance_ms(base + RECOVERY_AT_MS - fed.clock.now_ms)
    driver.finish()
    t0 = fed.clock.now_ms
    recovered = service.execute(DEMO_SQL)
    recovery_ms = fed.clock.now_ms - t0

    stats = service.stats()
    return {
        "sql": DEMO_SQL,
        "truth_rows": [list(r) for r in truth],
        "baseline_outcome": "ok",
        "samples": [
            {"at_ms": at, "outcome": outcome, "latency_ms": ms}
            for at, outcome, ms in samples
        ],
        "outcomes": {
            "ok": sum(1 for s in samples if s[1] == "ok"),
            "partial": sum(1 for s in samples if s[1] == "partial"),
            "wrong": sum(1 for s in samples if s[1] == "WRONG"),
        },
        "partition_timeout_ms": costs.PARTITION_TIMEOUT_MS,
        "blackout_first_latency_ms": blackout[0][2] if blackout else None,
        "steady_state_max_latency_ms": max(s[2] for s in steady) if steady else None,
        "recovery_latency_ms": round(recovery_ms, 3),
        "recovery_rows_identical": recovered.rows == truth,
        "resilience": stats["resilience"],
        "partial_answers": stats.get("partial_answers", 0),
        "net_partition_timeouts": fed.network.partition_timeouts,
    }


def _print_human(report: dict) -> None:
    print(f"query: {report['sql']}")
    print(f"chaos workload: {len(report['samples'])} queries, outcomes "
          f"{report['outcomes']}")
    for sample in report["samples"]:
        print(
            f"  t+{sample['at_ms']:>8.1f} ms  {sample['outcome']:7}  "
            f"{sample['latency_ms']:g} ms"
        )
    print(
        f"blackout: first hit {report['blackout_first_latency_ms']} ms, "
        f"steady state max {report['steady_state_max_latency_ms']} ms "
        f"(partition timeout {report['partition_timeout_ms']} ms)"
    )
    print(
        f"recovery: {report['recovery_latency_ms']} ms, rows identical: "
        f"{report['recovery_rows_identical']}"
    )
    for key, b in sorted(report["resilience"]["breakers"].items()):
        print(
            f"  breaker {key}: state={b['state']} opens={b['opens']} "
            f"fast_fails={b['fast_fails']}"
        )
    print(f"network partition timeouts paid: {report['net_partition_timeouts']}")


def _self_test() -> int:
    """Fixture-free sanity gate over the resilience stack."""
    report = build_report()
    outcomes = report["outcomes"]
    breakers = report["resilience"]["breakers"].values()
    steady = report["steady_state_max_latency_ms"]
    checks = [
        ("no silently wrong answers", outcomes["wrong"] == 0),
        ("queries succeeded while healthy", outcomes["ok"] >= 1),
        ("blackout produced flagged partials", outcomes["partial"] >= 3),
        ("a circuit breaker opened", any(b["opens"] >= 1 for b in breakers)),
        ("breakers fast-failed", any(b["fast_fails"] >= 1 for b in breakers)),
        (
            "steady-state latency beats the partition timeout",
            steady is not None and steady < report["partition_timeout_ms"],
        ),
        (
            "recovery returned the ground truth",
            report["recovery_rows_identical"],
        ),
        (
            "recovery latency is healthy",
            report["recovery_latency_ms"] < report["partition_timeout_ms"],
        ),
        (
            "partition timeouts were counted",
            report["net_partition_timeouts"] >= 1,
        ),
    ]
    failed = 0
    for name, ok in checks:
        if ok:
            print(f"ok    {name}")
        else:
            failed += 1
            print(f"FAIL  {name}")
    if failed:
        print(f"self-test: {failed} of {len(checks)} checks failed")
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.chaosreport",
        description="chaos/resilience report for the demo federation",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the report to FILE instead of stdout"
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in resilience checks and exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return _self_test()

    report = build_report()
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(text)
        return 0
    _print_human(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Federation topology report.

Renders a text inventory of a :class:`~repro.core.federation.GridFederation`:
hosts with tiers, JClarens servers with their registered databases and
POOL/JDBC routing, the RLS table map, and non-default links. The
operations example and debugging sessions use it to see the whole
deployment at a glance.
"""

from __future__ import annotations

from repro.core.federation import GridFederation
from repro.dialects import get_dialect


def describe_federation(fed: GridFederation) -> str:
    """Multi-line text description of the deployment."""
    lines: list[str] = ["grid federation topology", "========================"]

    lines.append("hosts:")
    for host in fed.network.hosts():
        flags = []
        if not fed.network.is_reachable(host.name, host.name):
            flags.append("DOWN")
        suffix = f" [{' '.join(flags)}]" if flags else ""
        lines.append(f"  {host.name} (tier {host.tier}){suffix}")

    lines.append("servers:")
    for handle in fed.servers():
        service = handle.service
        pool = "pooled-jdbc" if service.router.jdbc_pool else "jdbc-per-query"
        selector = "proximity" if service.replica_selector else "first-listed"
        lines.append(
            f"  {handle.name} @ {handle.host} "
            f"({pool}, replica policy: {selector})"
        )
        for db_name in service.dictionary.databases():
            spec = service.dictionary.spec_for(db_name)
            url = service.dictionary.url_for(db_name)
            dialect = get_dialect(spec.vendor)
            route = "POOL-RAL" if dialect.pool_supported else "JDBC"
            remote = any(
                loc.is_remote
                for t in spec.tables
                for loc in service.dictionary.locations(t.logical_name)
                if loc.database_name == db_name
            )
            origin = "remote" if remote else "local"
            tables = ", ".join(spec.logical_table_names()[:6])
            more = len(spec.logical_table_names()) - 6
            if more > 0:
                tables += f", … +{more}"
            lines.append(
                f"    {db_name} [{spec.vendor}/{route}/{origin}] {url}"
            )
            lines.append(f"      tables: {tables}")

    lines.append("replica location service:")
    lines.append(f"  host {fed.rls_server.host}; "
                 f"{len(fed.rls_server.known_tables())} table(s) mapped; "
                 f"{fed.rls_server.lookups} lookups, "
                 f"{fed.rls_server.publishes} publishes")
    for table in fed.rls_server.known_tables():
        urls = fed.rls_server._mappings[table]
        lines.append(f"  {table}: {', '.join(urls)}")

    overrides = getattr(fed.network, "_links", {})
    if overrides:
        lines.append("link overrides:")
        for pair, link in sorted(overrides.items(), key=lambda kv: sorted(kv[0])):
            a, b = sorted(pair)
            lines.append(
                f"  {a} <-> {b}: {link.bandwidth_mbps:g} Mbps, "
                f"{link.latency_ms:g} ms"
            )

    lines.append(
        f"traffic: {fed.network.messages} messages, "
        f"{fed.network.bytes_moved} bytes; "
        f"virtual time {fed.clock.now_ms / 1000:.3f} s"
    )
    return "\n".join(lines)

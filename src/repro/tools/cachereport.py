"""Cache effectiveness report CLI: ``python -m repro.tools.cachereport``.

Builds a cached (non-observing, so forwarded sub-queries keep stable
wire shapes and the remote-answer level can hit) two-server federation,
runs the distributed demo query cold and warm, then demonstrates
epoch-based invalidation with a live schema change::

    python -m repro.tools.cachereport              # human-readable report
    python -m repro.tools.cachereport --json       # machine-readable report
    python -m repro.tools.cachereport --json --out BENCH_cachereport.json
    python -m repro.tools.cachereport --self-test  # fixture-free CI gate
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.federation import GridFederation
from repro.tools.tracereport import DEMO_SQL, _events_db, _runs_db


def build_cached_federation():
    """Two caching JClarens servers (no tracing), one database each."""
    fed = GridFederation()
    a = fed.create_server("jclarens-a", "tier2a.cern.ch", cache=True)
    b = fed.create_server("jclarens-b", "tier2b.caltech.edu", cache=True)
    events = _events_db()
    runs = _runs_db()
    fed.attach_database(a, events, logical_names={"EVT": "events"})
    fed.attach_database(b, runs, logical_names={"RUN_INFO": "runs"})
    return fed, a, b, events, runs


def build_report() -> dict:
    """Cold run, warm run, schema-change invalidation, fresh re-run."""
    fed, a, b, events, _runs = build_cached_federation()
    service = a.service

    t0 = fed.clock.now_ms
    cold = service.execute(DEMO_SQL)
    cold_ms = fed.clock.now_ms - t0

    t1 = fed.clock.now_ms
    warm = service.execute(DEMO_SQL)
    warm_ms = fed.clock.now_ms - t1
    warm_stats = service.cache.stats()

    # Invalidate by changing the events schema: the §4.9 tracker's md5
    # diff bumps the database's epoch, and the next run is cold again.
    events.execute("ALTER TABLE EVT ADD COLUMN EXTRA INT")
    service.tracker.poll()
    t2 = fed.clock.now_ms
    fresh = service.execute(DEMO_SQL)
    fresh_ms = fed.clock.now_ms - t2

    return {
        "sql": DEMO_SQL,
        "rows": cold.row_count,
        "cold_ms": round(cold_ms, 3),
        "warm_ms": round(warm_ms, 3),
        "speedup": round(cold_ms / warm_ms, 2) if warm_ms else None,
        "warm_rows_identical": warm.rows == cold.rows,
        "post_invalidation_ms": round(fresh_ms, 3),
        "post_invalidation_rows_identical": fresh.rows == cold.rows,
        "cache_after_warm": warm_stats,
        "cache_after_invalidation": service.cache.stats(),
        "remote_server_cache": b.service.cache.stats(),
    }


def _print_human(report: dict) -> None:
    print(f"query: {report['sql']}")
    print(
        f"cold {report['cold_ms']} ms -> warm {report['warm_ms']} ms "
        f"({report['speedup']}x), rows identical: "
        f"{report['warm_rows_identical']}"
    )
    stats = report["cache_after_warm"]
    for level in ("plan", "sub", "remote"):
        s = stats[level]
        print(
            f"  {level:6} entries={s['entries']} bytes={s['bytes']} "
            f"hits={s['hits']} misses={s['misses']} hit_rate={s['hit_rate']:g}"
        )
    print(
        f"schema change + tracker poll -> epoch generation "
        f"{report['cache_after_invalidation']['epoch_generation']}, "
        f"re-run {report['post_invalidation_ms']} ms, rows identical: "
        f"{report['post_invalidation_rows_identical']}"
    )


def _self_test() -> int:
    """Fixture-free sanity gate over the caching stack."""
    report = build_report()
    warm = report["cache_after_warm"]
    after = report["cache_after_invalidation"]
    checks = [
        ("warm run faster than cold", report["warm_ms"] < report["cold_ms"]),
        ("warm run at least 5x faster", report["warm_ms"] * 5 <= report["cold_ms"]),
        ("warm rows byte-identical", report["warm_rows_identical"]),
        ("plan cache hit", warm["plan"]["hits"] >= 1),
        ("sub-result cache hit", warm["sub"]["hits"] >= 1),
        ("remote-answer cache hit", warm["remote"]["hits"] >= 1),
        (
            "schema change bumped the epoch",
            after["epoch_generation"] > warm["epoch_generation"],
        ),
        (
            "invalidation flushed entries",
            after["invalidations"] > warm["invalidations"],
        ),
        (
            "post-invalidation run not served stale",
            report["post_invalidation_rows_identical"]
            and report["post_invalidation_ms"] > report["warm_ms"],
        ),
    ]
    failed = 0
    for name, ok in checks:
        if ok:
            print(f"ok    {name}")
        else:
            failed += 1
            print(f"FAIL  {name}")
    if failed:
        print(f"self-test: {failed} of {len(checks)} checks failed")
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.cachereport",
        description="cache effectiveness report for the demo federation",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the report to FILE instead of stdout"
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in caching checks and exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return _self_test()

    report = build_report()
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(text)
        return 0
    _print_human(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

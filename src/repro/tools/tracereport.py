"""Trace/metrics report CLI: ``python -m repro.tools.tracereport``.

Builds the built-in two-server observed federation, runs a distributed
query plus a self-querying monitor query, and reports the resulting
span tree and metrics summary — the quickest way to *see* what the
observability layer records::

    python -m repro.tools.tracereport              # human-readable report
    python -m repro.tools.tracereport --json       # machine-readable report
    python -m repro.tools.tracereport --json --out BENCH_federation.json
    python -m repro.tools.tracereport --self-test  # fixture-free CI gate

The ``--json`` form is what the benchmark suite uses to emit its
``BENCH_federation.json`` artifact.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.federation import GridFederation
from repro.engine.database import Database
from repro.obs.trace import Span, format_span_tree

#: the distributed query the demo federation runs (events on server A,
#: runs on server B — so executing it on A forces an RLS lookup and a
#: remote Clarens hop)
DEMO_SQL = (
    "SELECT e.energy, r.detector FROM events e "
    "INNER JOIN runs r ON e.run_id = r.run_id WHERE r.good = 1"
)

MONITOR_SQL = "SELECT COUNT(*) FROM monitor_spans"


def _events_db(n_events: int = 10) -> Database:
    db = Database("mart_mysql", "mysql")
    db.execute(
        "CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT, "
        "ENERGY DOUBLE, TAG VARCHAR(8))"
    )
    for i in range(n_events):
        tag = "hot" if i % 2 else "cold"
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i % 3}, {i * 1.5}, '{tag}')")
    return db


def _runs_db() -> Database:
    db = Database("mart_mssql", "mssql")
    db.execute(
        "CREATE TABLE RUN_INFO (RUN_ID INT PRIMARY KEY, DETECTOR NVARCHAR(20), "
        "GOOD INT)"
    )
    for i, (det, good) in enumerate([("cms", 1), ("atlas", 1), ("lhcb", 0)]):
        db.execute(f"INSERT INTO RUN_INFO VALUES ({i}, '{det}', {good})")
    return db


def build_observed_federation(cache: bool = False):
    """Two observing JClarens servers, one database each.

    Returns ``(federation, handle_a, handle_b)``; ``events`` lives on
    server A, ``runs`` on server B, and both servers publish their
    monitor tables to the RLS. ``cache=True`` additionally turns on the
    multi-level query cache on both servers.
    """
    fed = GridFederation()
    a = fed.create_server("jclarens-a", "tier2a.cern.ch", observe=True, cache=cache)
    b = fed.create_server(
        "jclarens-b", "tier2b.caltech.edu", observe=True, cache=cache
    )
    fed.attach_database(a, _events_db(), logical_names={"EVT": "events"})
    fed.attach_database(b, _runs_db(), logical_names={"RUN_INFO": "runs"})
    return fed, a, b


def build_report() -> dict:
    """Run the demo workload and assemble the full telemetry report.

    The demo query runs twice on a cached federation: the reported
    trace is the cold run's; the warm repeat exercises the plan and
    sub-result caches, whose stats land in the ``cache`` block.
    """
    fed, a, b = build_observed_federation(cache=True)
    service = a.service
    answer = service.execute(DEMO_SQL)
    trace_id = service.tracer.last_trace_id
    spans = service.tracer.spans_for(trace_id)
    query_rec = service.tracer.queries[-1]

    warm_t0 = fed.clock.now_ms
    service.execute(DEMO_SQL)
    warm_ms = fed.clock.now_ms - warm_t0

    monitor = service.execute(MONITOR_SQL)
    monitor_span_count = int(monitor.rows[0][0])

    return {
        "trace_id": trace_id,
        "sql": DEMO_SQL,
        "rows": answer.row_count,
        "distributed": answer.distributed,
        "servers_accessed": answer.servers_accessed,
        "total_ms": round(query_rec.duration_ms, 3),
        "warm_ms": round(warm_ms, 3),
        "spans": [s.as_dict() for s in spans],
        "tree": format_span_tree(spans),
        "metrics": {
            "jclarens-a": service.metrics.as_dict(),
            "jclarens-b": b.service.metrics.as_dict(),
        },
        "cache": service.cache.stats(),
        "monitor_span_count": monitor_span_count,
        "monitor_sql": MONITOR_SQL,
    }


def _print_human(report: dict) -> None:
    print(f"trace {report['trace_id']}  ({report['total_ms']} ms simulated)")
    print(f"query: {report['sql']}")
    print(
        f"rows={report['rows']} distributed={report['distributed']} "
        f"servers={report['servers_accessed']}"
    )
    print()
    for line in report["tree"]:
        print(line)
    print()
    print(f"{report['monitor_sql']!r} -> {report['monitor_span_count']} spans")
    print()
    cache = report["cache"]
    print(
        f"warm repeat: {report['warm_ms']} ms "
        f"(cold {report['total_ms']} ms) — "
        f"plan hit-rate {cache['plan']['hit_rate']:g}, "
        f"sub hit-rate {cache['sub']['hit_rate']:g}, "
        f"{cache['sub']['entries']} sub-results "
        f"({cache['sub']['bytes']} bytes) cached"
    )
    print()
    for server, metrics in report["metrics"].items():
        print(f"[{server}]")
        for name, value in metrics["counters"].items():
            print(f"  counter   {name:30} {value:g}")
        for name, stats in metrics["histograms"].items():
            print(
                f"  histogram {name:30} count={stats['count']:g} "
                f"p50={stats['p50']:g} p95={stats['p95']:g} p99={stats['p99']:g}"
            )


def _self_test() -> int:
    """Fixture-free sanity gate over the whole observability stack."""
    report = build_report()
    spans = [Span.from_dict(d) for d in report["spans"]]
    by_stage: dict[str, list[Span]] = {}
    for span in spans:
        by_stage.setdefault(span.stage, []).append(span)
    roots = [s for s in spans if s.parent_id is None]
    root = roots[0] if roots else None
    ids = {s.span_id for s in spans}
    counters_a = report["metrics"]["jclarens-a"]["counters"]
    hist_a = report["metrics"]["jclarens-a"]["histograms"]

    checks = [
        (
            "one root span, and it is the query stage",
            len(roots) == 1 and roots[0].stage == "query",
        ),
        ("decompose span present", "decompose" in by_stage),
        ("rls_lookup span present", "rls_lookup" in by_stage),
        ("merge span present", "merge" in by_stage),
        ("two subquery spans", len(by_stage.get("subquery", [])) >= 2),
        ("transfer spans present", "transfer" in by_stage),
        (
            "remote server's spans joined the trace",
            any(s.server == "jclarens-b" for s in spans),
        ),
        (
            "every span belongs to the one trace",
            all(s.trace_id == report["trace_id"] for s in spans),
        ),
        (
            "every non-root parent id resolves",
            all(
                s.parent_id in ids
                for s in spans
                if s is not root and s.parent_id is not None
            ),
        ),
        (
            "child spans sit inside the root's interval",
            root is not None
            and all(
                s.start_ms >= root.start_ms - 1e-9
                and (s.end_ms or s.start_ms) <= (root.end_ms or 0) + 1e-9
                for s in spans
                if s is not root and s.server == "jclarens-a"
            ),
        ),
        (
            "root duration equals the reported total",
            root is not None
            and abs(root.duration_ms - report["total_ms"]) < 1e-3,
        ),
        ("distributed answer", bool(report["distributed"])),
        (
            "monitor_spans sees the finished trace",
            report["monitor_span_count"] >= len(spans),
        ),
        ("queries counter incremented", counters_a.get("queries", 0) >= 1),
        ("query_ms histogram fed", hist_a.get("query_ms", {}).get("count", 0) >= 1),
        (
            "remote route counted",
            counters_a.get("subqueries.remote", 0) >= 1,
        ),
        (
            "warm repeat hit the plan cache",
            report["cache"]["plan"]["hits"] >= 1,
        ),
        (
            "warm repeat hit the sub-result cache",
            report["cache"]["sub"]["hits"] >= 1,
        ),
        (
            "warm repeat faster than the cold run",
            report["warm_ms"] < report["total_ms"],
        ),
    ]
    failed = 0
    for name, ok in checks:
        if ok:
            print(f"ok    {name}")
        else:
            failed += 1
            print(f"FAIL  {name}")
    if failed:
        print(f"self-test: {failed} of {len(checks)} checks failed")
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.tracereport",
        description="span-tree and metrics report for the demo federation",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the report to FILE instead of stdout"
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in observability checks and exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return _self_test()

    report = build_report()
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(text)
        return 0
    _print_human(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

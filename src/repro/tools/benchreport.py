"""Aggregate benchmark result files into one markdown report.

``pytest benchmarks/ --benchmark-only`` leaves one plain-text table per
experiment under ``benchmarks/results/``. This tool stitches them into
a single ``RESULTS.md`` (or stdout) in a stable order — paper
experiments first, ablations, then supplementary runs::

    python -m repro.tools.benchreport [results_dir] [-o RESULTS.md]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

#: preferred presentation order; anything else is appended alphabetically
PREFERRED_ORDER = [
    "table1_query_response",
    "fig4_etl_warehouse",
    "fig5_materialize_marts",
    "fig6_row_scaling",
    "ablation_staging",
    "ablation_rls",
    "ablation_routing",
    "ablation_pushdown",
    "ablation_pooling",
    "ext_wan_replicas",
    "query_mix",
    "nxs_scaling",
]


def collect(results_dir: pathlib.Path) -> list[tuple[str, str]]:
    """(name, text) for every result file, in presentation order."""
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    available = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    ordered: list[tuple[str, str]] = []
    for name in PREFERRED_ORDER:
        path = available.pop(name, None)
        if path is not None:
            ordered.append((name, path.read_text()))
    for name in sorted(available):
        ordered.append((name, available[name].read_text()))
    return ordered


def render_markdown(sections: list[tuple[str, str]]) -> str:
    """One markdown document with each experiment in a code block."""
    out = [
        "# Benchmark results",
        "",
        "Generated from `benchmarks/results/` by `repro.tools.benchreport`.",
        "Regenerate the inputs with `pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    for name, text in sections:
        lines = text.strip().splitlines()
        title = lines[0] if lines else name
        body = "\n".join(lines[2:]) if len(lines) > 2 else ""
        out.append(f"## {title}")
        out.append("")
        out.append("```")
        out.append(body)
        out.append("```")
        out.append("")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "results_dir",
        nargs="?",
        default="benchmarks/results",
        help="directory of per-experiment .txt reports",
    )
    parser.add_argument("-o", "--output", help="write markdown here (default stdout)")
    args = parser.parse_args(argv)
    sections = collect(pathlib.Path(args.results_dir))
    if not sections:
        print("no result files found; run the benchmarks first", file=sys.stderr)
        return 1
    text = render_markdown(sections)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(sections)} experiments)")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Static SQL checker CLI: ``python -m repro.tools.sqlcheck``.

Lints queries (inline strings or ``.sql`` files, ``;``-separated)
against one or more XSpec documents and exits non-zero when any
ERROR-severity diagnostic is found — suitable as a CI gate for the
query sets an analysis site maintains::

    python -m repro.tools.sqlcheck --xspec warehouse.xspec.xml queries.sql
    python -m repro.tools.sqlcheck --xspec a.xml --xspec b.xml \\
        --sql "SELECT run, SUM(edep) FROM events GROUP BY run"
    python -m repro.tools.sqlcheck --self-test

``--disable CODE`` switches a rule off and ``--severity CODE=LEVEL``
re-grades one (e.g. ``--severity RPR501=error`` to fail the build on
whole-table shipping).
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ReproError
from repro.lint import (
    RULES,
    LintConfig,
    Severity,
    XSpecSchema,
    lint_sql,
)
from repro.metadata.xspec import LowerXSpec


def split_statements(text: str) -> list[str]:
    """Split ``;``-separated SQL, respecting single-quoted strings."""
    out: list[str] = []
    buf: list[str] = []
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "'":
            # '' inside a string is an escaped quote, not a terminator.
            if in_string and i + 1 < len(text) and text[i + 1] == "'":
                buf.append("''")
                i += 2
                continue
            in_string = not in_string
            buf.append(ch)
        elif ch == ";" and not in_string:
            out.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        i += 1
    out.append("".join(buf))
    return [s.strip() for s in out if s.strip()]


def _build_config(args) -> LintConfig:
    severities: dict[str, Severity] = {}
    for spec in args.severity or []:
        if "=" not in spec:
            raise ValueError(f"--severity expects CODE=LEVEL, got {spec!r}")
        code, _eq, level = spec.partition("=")
        severities[code.strip().upper()] = Severity.from_name(level)
    return LintConfig(
        disabled={c.strip().upper() for c in (args.disable or [])},
        severities=severities,
    )


def _gather_sql(args) -> list[tuple[str, str]]:
    """(origin, statement) pairs from --sql options and file operands."""
    work: list[tuple[str, str]] = []
    for text in args.sql or []:
        for statement in split_statements(text):
            work.append(("<sql>", statement))
    for path in args.files:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        for statement in split_statements(text):
            work.append((path, statement))
    return work


def _self_test() -> int:
    """Exercise the analyzer against built-in sample specs.

    Covers one diagnostic per major code family plus a clean query, so
    CI can verify the checker itself without needing fixture files.
    """
    from repro.common.types import SQLType

    def col(name, sql_type, **kw):
        from repro.metadata.xspec import XSpecColumn

        return XSpecColumn(
            name=name.upper(), logical_name=name,
            vendor_type=str(sql_type), logical_type=sql_type, **kw,
        )

    from repro.metadata.xspec import XSpecTable

    mysql_spec = LowerXSpec(
        database_name="mart1",
        vendor="mysql",
        tables=(
            XSpecTable(
                name="EVENTS", logical_name="events",
                columns=(
                    col("run", SQLType.integer(), primary_key=True),
                    col("edep", SQLType.double()),
                    col("tag", SQLType.varchar(32)),
                ),
                row_count=50000,
            ),
        ),
    )
    mssql_spec = LowerXSpec(
        database_name="mart2",
        vendor="mssql",
        tables=(
            XSpecTable(
                name="RUNS", logical_name="runs",
                columns=(
                    col("run", SQLType.integer(), primary_key=True),
                    col("detector", SQLType.varchar(16)),
                ),
                row_count=400,
            ),
        ),
    )
    schema = XSpecSchema(mysql_spec, mssql_spec)
    expectations = [
        ("SELECT edep FROM events WHERE run > 5", set()),
        ("SELECT edep FROM evnts", {"RPR101"}),
        ("SELECT edap FROM events", {"RPR102"}),
        ("SELECT edep + tag FROM events", {"RPR201"}),
        ("SELECT edep FROM events WHERE tag", {"RPR202"}),
        (
            "SELECT edep FROM events WHERE run IN (SELECT run FROM runs)",
            {"RPR302"},
        ),
        # TRIM ships to the mssql mart (single-binding conjunct pushdown).
        (
            "SELECT e.edep FROM events e INNER JOIN runs r ON e.run = r.run "
            "WHERE TRIM(r.detector) = 'ECAL'",
            {"RPR401", "RPR501"},
        ),
        ("SELECT SUM(edep) FROM events GROUP BY tag", set()),
    ]
    failed = 0
    for sql, expected in expectations:
        report = lint_sql(sql, schema)
        got = report.codes()
        if got == expected:
            print(f"ok    {sql!r} -> {sorted(got) or 'clean'}")
        else:
            failed += 1
            print(f"FAIL  {sql!r}: expected {sorted(expected)}, got {sorted(got)}")
    if failed:
        print(f"self-test: {failed} of {len(expectations)} cases failed")
        return 1
    print(f"self-test: all {len(expectations)} cases passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.sqlcheck",
        description="statically check SQL against XSpec metadata",
    )
    parser.add_argument(
        "--xspec", action="append", metavar="FILE",
        help="XSpec XML document (repeatable; one per database)",
    )
    parser.add_argument(
        "--sql", action="append", metavar="TEXT",
        help="inline SQL to check (repeatable; ';'-separated)",
    )
    parser.add_argument(
        "files", nargs="*", metavar="FILE.sql",
        help="SQL files to check ('-' reads stdin)",
    )
    parser.add_argument(
        "--disable", action="append", metavar="CODE",
        help="disable a rule (repeatable), e.g. --disable RPR501",
    )
    parser.add_argument(
        "--severity", action="append", metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. --severity RPR202=error",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in sample-spec test suite and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(
                f"{rule.code}  {rule.severity.label:7}  "
                f"{rule.slug:20} {rule.description}"
            )
        return 0
    if args.self_test:
        return _self_test()

    try:
        config = _build_config(args)
    except ValueError as exc:
        parser.error(str(exc))

    if not args.xspec:
        parser.error("at least one --xspec FILE is required (or --self-test)")
    specs = []
    for path in args.xspec:
        try:
            with open(path, encoding="utf-8") as handle:
                specs.append(LowerXSpec.from_xml(handle.read()))
        except (OSError, ReproError) as exc:
            print(f"error: cannot load XSpec {path!r}: {exc}", file=sys.stderr)
            return 2
    schema = XSpecSchema(*specs)

    work = _gather_sql(args)
    if not work:
        parser.error("nothing to check: pass --sql TEXT or FILE.sql operands")

    errors = warnings = 0
    for origin, statement in work:
        report = lint_sql(statement, schema, config)
        errors += len(report.errors)
        warnings += len(report.warnings)
        for line in report.format_lines():
            print(f"{origin}: {line}")
    print(
        f"checked {len(work)} statement(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Operational tooling: report aggregation and metadata utilities."""

"""Federation health report CLI: ``python -m repro.tools.healthreport``.

The obs-v2 dashboard in one command: builds an *observed* resilient
federation ("events" replicated on two database hosts behind one
JClarens server, SLOs + archiver + profiler on), drives it through a
healthy phase, a scripted chaos blackout and a recovery phase, and
reports what ``dataaccess.health`` said at each point — including the
SLO burn-rate alerts the blackout fired, the per-operator profile of a
query, and the same telemetry re-read through plain federated SQL
against ``monitor_alerts`` / ``monitor_history``::

    python -m repro.tools.healthreport              # human-readable report
    python -m repro.tools.healthreport --json       # machine-readable report
    python -m repro.tools.healthreport --json --out BENCH_healthreport.json
    python -m repro.tools.healthreport --self-test  # fixture-free CI gate
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.federation import GridFederation
from repro.engine.database import Database
from repro.obs.archive import RAW_RESOLUTION_MS
from repro.obs.slo import SLO
from repro.resilience import BreakerConfig, ChaosSchedule, ResilienceConfig

DEMO_SQL = "SELECT COUNT(*), SUM(energy) FROM events"

#: workload cadence and chaos timeline (all relative, simulated ms)
QUERY_SPACING_MS = 500.0
HEALTHY_QUERIES = 8
CHAOS_QUERIES = 10
RECOVERY_QUERIES = 12
BREAKER_COOLDOWN_MS = 4_000.0

#: tight objectives so ten partial answers visibly torch the budget
DEMO_SLOS = (
    SLO(name="availability", kind="errors", objective=0.99,
        fast_window_ms=5_000.0, slow_window_ms=60_000.0),
    SLO(name="latency", kind="latency", objective=0.95,
        metric="query_ms", threshold_ms=2_000.0,
        fast_window_ms=5_000.0, slow_window_ms=60_000.0),
)


def _events_db(name: str, vendor: str = "mysql", n: int = 40) -> Database:
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 0.5})")
    return db


def build_observed_federation():
    """One observed+resilient server, 'events' replicated on two hosts."""
    fed = GridFederation()
    config = ResilienceConfig(
        breaker=BreakerConfig(cooldown_ms=BREAKER_COOLDOWN_MS)
    )
    server = fed.create_server(
        "jclarens-a", "tier2a.cern.ch",
        observe=True, cache=True, resilience=config, slos=DEMO_SLOS,
    )
    primary = _events_db("primary_mart")
    replica = _events_db("replica_mart", vendor="sqlite")
    fed.attach_database(
        server, primary, db_host="db1.cern.ch", logical_names={"EVT": "events"}
    )
    fed.attach_database(
        server, replica, db_host="db2.cern.ch", logical_names={"EVT": "events"}
    )
    return fed, server


def _run_phase(fed, service, seq, n: int, allow_partial: bool) -> dict:
    """Run n spaced queries, then ask the server how it feels.

    Each query gets a distinct literal (from ``seq``) so the sub-result
    cache cannot absorb the workload — every query must actually reach
    the replicated backends, which is what the chaos phase is testing.
    """
    outcomes = {"ok": 0, "partial": 0}
    for _ in range(n):
        sql = DEMO_SQL + f" WHERE event_id >= {next(seq)}"
        answer = service.execute(sql, allow_partial=allow_partial)
        outcomes["partial" if answer.partial else "ok"] += 1
        fed.clock.advance_ms(QUERY_SPACING_MS)
    health = service.health()
    return {
        "outcomes": outcomes,
        "verdict": health["verdict"],
        "health": health,
    }


def _sql_value(service, sql: str):
    return service.execute(sql).rows[0][0]


def build_report() -> dict:
    """Healthy -> blackout (budget burns, alerts fire) -> recovery."""
    fed, server = build_observed_federation()
    service = server.service
    seq = iter(range(10_000))

    healthy = _run_phase(fed, service, seq, HEALTHY_QUERIES, allow_partial=False)

    base = fed.clock.now_ms
    restore_at = base + CHAOS_QUERIES * QUERY_SPACING_MS
    schedule = (
        ChaosSchedule()
        .fail_host(base, "db1.cern.ch")
        .fail_host(base, "db2.cern.ch")
        .restore_host(restore_at, "db1.cern.ch")
        .restore_host(restore_at, "db2.cern.ch")
    )
    driver = schedule.driver(fed.network, fed.clock)
    driver.tick()
    blackout = _run_phase(fed, service, seq, CHAOS_QUERIES, allow_partial=True)

    driver.finish()  # apply the scheduled restores before recovering
    fed.clock.advance_ms(BREAKER_COOLDOWN_MS)
    recovery = _run_phase(
        fed, service, seq, RECOVERY_QUERIES, allow_partial=False
    )

    # the per-operator profile of the most recent (healthy) query
    profile = service.profile()

    # the same telemetry, re-read through plain federated SQL
    sql_demo = {
        "alerts_fired": _sql_value(
            service,
            "SELECT COUNT(*) FROM monitor_alerts WHERE state = 'firing'",
        ),
        "alerts_resolved": _sql_value(
            service,
            "SELECT COUNT(*) FROM monitor_alerts WHERE state = 'resolved'",
        ),
        "history_buckets": _sql_value(
            service, "SELECT COUNT(*) FROM monitor_history"
        ),
        "queries_archived_raw": _sql_value(
            service,
            "SELECT SUM(total) FROM monitor_history "
            "WHERE metric = 'queries' AND res_ms = 0.0",
        ),
        "profile_rows": _sql_value(
            service, "SELECT COUNT(*) FROM monitor_profile"
        ),
    }

    # rollup conservation, checked straight on the archive
    conservation = {}
    for name in ("queries", "partial_answers", "query_ms"):
        series = service.archiver.series_for(name)
        if series is None:
            continue
        totals = {
            res: series.totals(res) for res in series.resolutions
        }
        raw = totals[RAW_RESOLUTION_MS]
        conservation[name] = {
            "samples": raw.samples,
            "total": raw.total,
            "conserved": all(
                t.samples == raw.samples and abs(t.total - raw.total) < 1e-9
                for t in totals.values()
            ),
            "resolutions": sorted(totals),
        }

    return {
        "sql": DEMO_SQL,
        "slos": [
            {"name": s.name, "kind": s.kind, "objective": s.objective}
            for s in DEMO_SLOS
        ],
        "phases": {
            "healthy": healthy,
            "blackout": blackout,
            "recovery": recovery,
        },
        "profile": profile,
        "sql_demo": sql_demo,
        "conservation": conservation,
        "alerts": [a.as_dict() for a in service.slo.alerts],
    }


def _print_human(report: dict) -> None:
    print(f"query: {report['sql']}")
    print("objectives: " + ", ".join(
        f"{s['name']} ({s['kind']}, {s['objective']:.0%})"
        for s in report["slos"]
    ))
    for name in ("healthy", "blackout", "recovery"):
        phase = report["phases"][name]
        health = phase["health"]
        firing = health["alerts_firing"]
        print(
            f"phase {name:9} outcomes={phase['outcomes']} "
            f"verdict={phase['verdict'].upper()}"
            + (f" alerts={[a['slo'] + '/' + a['severity'] for a in firing]}"
               if firing else "")
        )
    print("alert transitions:")
    for alert in report["alerts"]:
        print(
            f"  t+{alert['ts_ms']:>9.1f} ms  {alert['slo']:<13} "
            f"{alert['severity']:<7} {alert['state']:<9} "
            f"burn={alert['burn_rate']:.1f}x over {alert['window_ms']:g} ms"
        )
    profile = report["profile"]
    print(
        f"profile of last query ({profile['total_ms']:g} ms total, "
        f"self-times sum to {profile['self_total_ms']:g} ms):"
    )
    for op in profile["operators"]:
        print(
            f"  {op['stage']:<12} [{op['server']}] calls={op['calls']} "
            f"self={op['self_ms']:.3f} ms cum={op['cum_ms']:.3f} ms"
        )
    print("folded stacks (flame-graph input):")
    for line in profile["folded"]:
        print(f"  {line}")
    demo = report["sql_demo"]
    print(
        "federated SQL over the telemetry: "
        f"{demo['alerts_fired']} alerts fired / {demo['alerts_resolved']} "
        f"resolved, {demo['history_buckets']} archive buckets, "
        f"{demo['profile_rows']} profile rows"
    )
    for name, c in sorted(report["conservation"].items()):
        print(
            f"  rollup conservation [{name}]: samples={c['samples']:g} "
            f"total={c['total']:g} conserved={c['conserved']}"
        )


def _self_test() -> int:
    """Fixture-free sanity gate over the obs-v2 stack."""
    report = build_report()
    phases = report["phases"]
    profile = report["profile"]
    alerts = report["alerts"]
    checks = [
        ("healthy phase verdict is ok", phases["healthy"]["verdict"] == "ok"),
        (
            "blackout burned the budget to critical",
            phases["blackout"]["verdict"] == "critical",
        ),
        (
            "a page-severity alert fired",
            any(a["severity"] == "page" and a["state"] == "firing"
                for a in alerts),
        ),
        (
            "the page alert resolved after recovery",
            phases["recovery"]["verdict"] != "critical",
        ),
        (
            "monitor_alerts answers federated SQL",
            report["sql_demo"]["alerts_fired"] >= 1,
        ),
        (
            "monitor_history answers federated SQL",
            report["sql_demo"]["history_buckets"] > 0,
        ),
        (
            "archived query count matches the workload",
            report["sql_demo"]["queries_archived_raw"]
            >= HEALTHY_QUERIES + CHAOS_QUERIES + RECOVERY_QUERIES,
        ),
        (
            "profile self-times sum to the traced latency",
            abs(profile["self_total_ms"] - profile["total_ms"]) < 1e-6,
        ),
        (
            "rollups conserve counts and sums",
            bool(report["conservation"])
            and all(c["conserved"] for c in report["conservation"].values()),
        ),
    ]
    failed = 0
    for name, ok in checks:
        if ok:
            print(f"ok    {name}")
        else:
            failed += 1
            print(f"FAIL  {name}")
    if failed:
        print(f"self-test: {failed} of {len(checks)} checks failed")
        return 1
    print(f"self-test: all {len(checks)} checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.healthreport",
        description="SLO/health report for the demo federation",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the report to FILE instead of stdout"
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in obs-v2 checks and exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return _self_test()

    report = build_report()
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(text)
        return 0
    _print_human(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Cache ablation — Table 1 queries cold vs warm (multi-level cache).

Runs the three Table 1 query classes on the paper testbed with the
multi-level cache enabled. Cold numbers must still fit the paper (cache
lookups cost no simulated time, so the cold path is the prototype's);
warm repeats must be at least 5x faster for the distributed classes,
with byte-identical rows. Emits ``benchmarks/results/BENCH_cache.json``.

Deliberately avoids the pytest-benchmark fixture so this file runs
under a plain pytest install (it is the one benchmark CI executes).
"""

import json

import pytest

from repro.hep.testbed import build_paper_testbed

from benchmarks.conftest import RESULTS_DIR, fmt_row, write_report

PAPER = {"local": 38.0, "dist_1srv": 487.5, "dist_2srv": 594.0}


@pytest.fixture(scope="module")
def testbed():
    return build_paper_testbed(cache=True)


@pytest.fixture(scope="module")
def measured(testbed):
    """Cold + warm outcome per query class, plus the emitted artifact."""
    tb = testbed
    fed, client, s1 = tb.federation, tb.client, tb.server1
    queries = {
        "local": tb.QUERY_LOCAL,
        "dist_1srv": tb.QUERY_DISTRIBUTED_1SRV,
        "dist_2srv": tb.QUERY_DISTRIBUTED_2SRV,
    }
    out = {}
    for name, sql in queries.items():
        cold = fed.query(client, s1, sql)
        warm = fed.query(client, s1, sql)
        out[name] = {
            "cold": cold,
            "warm": warm,
            "speedup": cold.response_ms / warm.response_ms,
        }

    artifact = {
        "queries": {
            name: {
                "paper_ms": PAPER[name],
                "cold_ms": round(m["cold"].response_ms, 3),
                "warm_ms": round(m["warm"].response_ms, 3),
                "speedup": round(m["speedup"], 2),
                "rows": m["cold"].answer.row_count,
                "rows_identical": m["cold"].answer.rows == m["warm"].answer.rows,
            }
            for name, m in out.items()
        },
        "cache": {
            "jclarens1": s1.service.cache.stats(),
            "jclarens2": tb.server2.service.cache.stats(),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_cache.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    widths = [10, 9, 9, 9, 8]
    lines = [
        fmt_row(["query", "paper ms", "cold ms", "warm ms", "speedup"], widths),
        *[
            fmt_row(
                [
                    name,
                    PAPER[name],
                    f"{m['cold'].response_ms:.1f}",
                    f"{m['warm'].response_ms:.1f}",
                    f"{m['speedup']:.1f}x",
                ],
                widths,
            )
            for name, m in out.items()
        ],
        "",
        f"artifact: {path.name}",
    ]
    write_report("ablation_cache", "Cache Ablation — Table 1 Cold vs Warm", lines)
    return out


class TestCacheAblation:
    def test_cold_numbers_still_fit_the_paper(self, measured):
        """Cache lookups are free in simulated time: cold == prototype."""
        for name, target in PAPER.items():
            assert measured[name]["cold"].response_ms == pytest.approx(
                target, rel=0.25
            ), name

    def test_warm_distributed_queries_at_least_5x_faster(self, measured):
        for name in ("dist_1srv", "dist_2srv"):
            m = measured[name]
            assert m["warm"].response_ms * 5 <= m["cold"].response_ms, (
                name,
                m["warm"].response_ms,
                m["cold"].response_ms,
            )

    def test_warm_rows_byte_identical(self, measured):
        for name, m in measured.items():
            assert m["warm"].answer.rows == m["cold"].answer.rows, name
            assert m["warm"].answer.columns == m["cold"].answer.columns, name

    def test_warm_queries_hit_every_local_level(self, testbed, measured):
        stats = testbed.server1.service.cache.stats()
        assert stats["plan"]["hits"] >= 3
        assert stats["sub"]["hits"] >= 1
        # the 2-server query forwards to jclarens2; its warm repeat is
        # answered from the remote-answer cache without a wire call
        assert stats["remote"]["hits"] >= 1

    def test_artifact_emitted(self, measured):
        artifact = json.loads((RESULTS_DIR / "BENCH_cache.json").read_text())
        assert set(artifact["queries"]) == set(PAPER)
        for entry in artifact["queries"].values():
            assert entry["rows_identical"]

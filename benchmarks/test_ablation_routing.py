"""Ablation C — POOL-RAL routing vs forcing everything through JDBC.

§4.5/§4.7: sub-queries for POOL-supported vendors go through cached
POOL-RAL handles; the rest pay a fresh JDBC connect+authenticate per
query. This bench pins the routing both ways and shows the POOL path is
what keeps local (non-distributed) queries at Table 1's 38 ms.
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.core import GridFederation
from repro.hep.testbed import _make_ntuple_db

from benchmarks.conftest import fmt_row, write_report

QUERY = "SELECT event_id, e FROM ntuple WHERE event_id <= 15"


def build(force_jdbc: bool):
    fed = GridFederation()
    server = fed.create_server("jc1", "pc1", force_jdbc=force_jdbc)
    db = _make_ntuple_db("ntuple_db", DeterministicRNG("route"), 3000, 150)
    fed.attach_database(server, db, logical_names={"NTUPLE": "ntuple"})
    client = fed.client("laptop")
    return fed, server, client


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for label, force in (("pool", False), ("jdbc", True)):
        fed, server, client = build(force)
        outcome = fed.query(client, server, QUERY)
        out[label] = (outcome, server)
    widths = [8, 12, 10]
    lines = [
        fmt_row(["route", "response ms", "routes"], widths),
        fmt_row(["pool", f"{out['pool'][0].response_ms:.1f}",
                 out["pool"][1].service.router.route_counts["pool"]], widths),
        fmt_row(["jdbc", f"{out['jdbc'][0].response_ms:.1f}",
                 out["jdbc"][1].service.router.route_counts["jdbc"]], widths),
        "",
        "pool: cached handle initialized at registration (paper wrapper method 1);",
        "jdbc: per-query XSpec parse + connect + authenticate (the N x S cost).",
    ]
    write_report("ablation_routing", "Ablation C — POOL-RAL vs JDBC Routing", lines)
    return out


class TestRoutingAblation:
    def test_pool_path_much_faster(self, comparison, benchmark):
        pool_ms = comparison["pool"][0].response_ms
        jdbc_ms = comparison["jdbc"][0].response_ms
        assert jdbc_ms > 5 * pool_ms
        benchmark(lambda: None)

    def test_same_answers_either_way(self, comparison, benchmark):
        assert comparison["pool"][0].answer.rows == comparison["jdbc"][0].answer.rows
        benchmark(lambda: None)

    def test_route_counters(self, comparison, benchmark):
        assert comparison["pool"][1].service.router.route_counts["pool"] >= 1
        assert comparison["pool"][1].service.router.route_counts["jdbc"] == 0
        assert comparison["jdbc"][1].service.router.route_counts["pool"] == 0
        assert comparison["jdbc"][1].service.router.route_counts["jdbc"] >= 1
        benchmark(lambda: None)

    def test_mssql_always_takes_jdbc(self, benchmark):
        """The vendor matrix forces MS SQL through JDBC regardless."""
        from repro.engine import Database

        fed = GridFederation()
        server = fed.create_server("jc1", "pc1")
        db = Database("m", "mssql")
        db.execute("CREATE TABLE T (A INT PRIMARY KEY)")
        db.execute("INSERT INTO T VALUES (1)")
        fed.attach_database(server, db)
        answer = server.service.execute("SELECT a FROM t")
        assert answer.routes == ["jdbc"]
        benchmark(lambda: server.service.execute("SELECT a FROM t"))

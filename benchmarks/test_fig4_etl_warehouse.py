"""Figure 4 — Data extracted from source databases and loaded into the
data warehouse (§5.1, Stage 1).

Paper: transfers of 0.397 .. 207.866 kB streamed from the normalized
sources through a temporary staging file into the warehouse's
denormalized schema; extraction (lower line, up to ~5-6 s) and loading
(upper line, up to ~15-18 s) are plotted separately and both grow
roughly linearly with size.
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.engine import Database
from repro.hep import (
    create_source_schema,
    etl_jobs_for_source,
    events_for_target_kb,
    generate_ntuple,
    populate_source,
)
from repro.net import Network, SimClock
from repro.warehouse import Warehouse

from benchmarks.conftest import fmt_row, write_report

#: the paper's x-axis points (kB)
SIZES_KB = [0.397, 4.928, 8.217, 9.486, 12.721, 67.480, 113.414, 207.866]
NVAR = 8


def run_stage1(kb: float, direct: bool = False):
    """One Figure-4 measurement: a source of ~kb worth of ntuple data."""
    n_events = events_for_target_kb(kb, NVAR)
    rng = DeterministicRNG(f"fig4-{kb}")
    source = Database("tier1_source", "oracle")
    create_source_schema(source)
    populate_source(source, rng, {1: generate_ntuple(rng.fork("nt"), n_events, NVAR)})
    network = Network()
    network.add_host("tier1.cern.ch", 1)
    clock = SimClock()
    warehouse = Warehouse(network, clock, nvar=NVAR)
    job = etl_jobs_for_source(source, "tier1.cern.ch", NVAR)[0]
    return warehouse.load(job, direct=direct)


@pytest.fixture(scope="module")
def sweep():
    reports = [run_stage1(kb) for kb in SIZES_KB]
    widths = [10, 10, 12, 10]
    lines = [fmt_row(["target kB", "staged kB", "extract s", "load s"], widths)]
    for kb, rep in zip(SIZES_KB, reports):
        lines.append(
            fmt_row(
                [f"{kb:.3f}", f"{rep.staged_kb:.2f}", f"{rep.extraction_s:.2f}",
                 f"{rep.loading_s:.2f}"],
                widths,
            )
        )
    lines += [
        "",
        "paper: extraction (lower line) reaches ~5-6 s and loading (upper line)",
        "~15-18 s at 207.866 kB; loading sits above extraction throughout.",
    ]
    write_report("fig4_etl_warehouse", "Figure 4 — Source -> Warehouse ETL", lines)
    return reports


class TestFig4:
    def test_staged_sizes_hit_paper_x_axis(self, sweep, benchmark):
        for kb, rep in zip(SIZES_KB, sweep):
            assert rep.staged_kb == pytest.approx(kb, rel=0.20)
        benchmark(lambda: None)

    def test_loading_line_above_extraction_line(self, sweep, benchmark):
        """The paper's invariant: the upper line is the loading time."""
        for rep in sweep[1:]:  # the smallest point is noise-dominated
            assert rep.loading_ms > rep.extraction_ms
        benchmark(lambda: None)

    def test_both_lines_grow_with_size(self, sweep, benchmark):
        ex = [r.extraction_ms for r in sweep]
        ld = [r.loading_ms for r in sweep]
        assert all(b > a for a, b in zip(ex, ex[1:]))
        assert all(b > a for a, b in zip(ld, ld[1:]))
        benchmark(lambda: None)

    def test_largest_point_matches_paper_scale(self, sweep, benchmark):
        biggest = sweep[-1]
        assert biggest.extraction_s == pytest.approx(5.5, rel=0.30)
        assert biggest.loading_s == pytest.approx(17.0, rel=0.30)
        benchmark(lambda: run_stage1(SIZES_KB[2]))

    def test_rows_conserved_through_pipeline(self, sweep, benchmark):
        for kb, rep in zip(SIZES_KB, sweep):
            assert rep.rows == events_for_target_kb(kb, NVAR)
        benchmark(lambda: None)

"""Ablation B — RLS load distribution vs one central server (§4.8).

The paper motivates the RLS module with load distribution: "load can be
distributed over as many servers as required, instead of putting it
entirely on just one server registering all the databases." We run the
same mixed query workload against (a) a single JClarens server hosting
both ntuple databases and (b) two servers each hosting one, and compare
the busiest server's accumulated service time.
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.core import GridFederation
from repro.hep.testbed import _make_ntuple_db

from benchmarks.conftest import fmt_row, write_report

WORKLOAD = [
    "SELECT event_id, e FROM ntuple_a WHERE event_id <= 200",
    "SELECT event_id, e FROM ntuple_b WHERE event_id <= 200",
    "SELECT COUNT(*) FROM ntuple_a WHERE e > 20",
    "SELECT COUNT(*) FROM ntuple_b WHERE e > 20",
    "SELECT event_id, px FROM ntuple_a WHERE event_id <= 500",
    "SELECT event_id, px FROM ntuple_b WHERE event_id <= 500",
] * 4


def build(distributed: bool):
    fed = GridFederation()
    s1 = fed.create_server("jc1", "pc1")
    servers = [s1]
    if distributed:
        s2 = fed.create_server("jc2", "pc2")
        servers.append(s2)
    db_a = _make_ntuple_db("ntuple_db_a", DeterministicRNG("rls-a"), 2000, 100)
    db_b = _make_ntuple_db("ntuple_db_b", DeterministicRNG("rls-b"), 2000, 100)
    fed.attach_database(s1, db_a, logical_names={"NTUPLE": "ntuple_a"})
    fed.attach_database(servers[-1], db_b, logical_names={"NTUPLE": "ntuple_b"})
    client = fed.client("laptop")
    return fed, servers, client


def entry_server_for(fed, servers, sql):
    """Client-side use of the RLS: submit to the server hosting the table.

    This is the hierarchical-hosting usage §4.8 describes — the RLS lets
    many small service instances share the table namespace, so clients
    land on the instance that owns their data instead of funneling
    through one registry-of-everything server.
    """
    table = "ntuple_b" if "ntuple_b" in sql else "ntuple_a"
    urls = fed.rls_server.lookup(table)
    by_url = {h.service.service_url: h for h in servers}
    return by_url[urls[0]]


def run_workload(fed, servers, client):
    for sql in WORKLOAD:
        target = entry_server_for(fed, servers, sql)
        fed.query(client, target, sql)
    busy = []
    for handle in servers:
        busy_ms = sum(s.busy_ms for s in handle.server.method_stats.values())
        busy.append((handle.name, busy_ms))
    return busy


@pytest.fixture(scope="module")
def comparison():
    central = run_workload(*build(distributed=False))
    spread = run_workload(*build(distributed=True))
    widths = [22, 14]
    lines = [fmt_row(["deployment", "busiest ms"], widths)]
    lines.append(fmt_row(["central (1 server)", f"{max(b for _, b in central):.0f}"], widths))
    lines.append(fmt_row(["RLS-spread (2 servers)", f"{max(b for _, b in spread):.0f}"], widths))
    lines += ["", "per-server busy time:"]
    for name, b in central + spread:
        lines.append(f"  {name}: {b:.0f} ms")
    write_report("ablation_rls", "Ablation B — RLS Load Distribution", lines)
    return central, spread


class TestRLSAblation:
    def test_hotspot_reduced_by_distribution(self, comparison, benchmark):
        central, spread = comparison
        assert max(b for _, b in spread) < max(b for _, b in central)
        benchmark(lambda: None)

    def test_work_actually_split(self, comparison, benchmark):
        _, spread = comparison
        busies = [b for _, b in spread]
        assert all(b > 0 for b in busies)
        # neither server carries more than ~80% of the total
        assert max(busies) / sum(busies) < 0.8
        benchmark(lambda: None)

    def test_rls_used_in_spread_deployment(self, benchmark):
        fed, servers, client = build(distributed=True)
        fed.query(client, servers[0], "SELECT COUNT(*) FROM ntuple_b")
        assert fed.rls_server.lookups >= 1
        benchmark(lambda: fed.query(client, servers[0], "SELECT COUNT(*) FROM ntuple_b"))

"""Ablation E — connection pooling vs the prototype's connect-per-query.

The prototype opens a fresh JDBC connection (plus XSpec metadata parse)
for every (query, database) pair — the paper itself attributes the >10x
distributed penalty of Table 1 to "connecting and authenticating with
several databases or servers". This ablation adds the era's standard
fix, a connection pool, and re-measures the Table 1 distributed query:
most of the penalty evaporates once connections are reused.
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.core import GridFederation
from repro.hep.testbed import _make_ntuple_db, _make_runmeta_db

from benchmarks.conftest import fmt_row, write_report

QUERY = (
    "SELECT n.event_id, m.detector FROM ntuple n JOIN runmeta m "
    "ON n.run_id = m.run_id WHERE n.event_id <= 100"
)
N_QUERIES = 6


def build(jdbc_pooling: bool):
    fed = GridFederation()
    server = fed.create_server("jc1", "pc1", jdbc_pooling=jdbc_pooling)
    ndb = _make_ntuple_db("ntuple_db", DeterministicRNG("pool-n"), 3000, 150)
    mdb = _make_runmeta_db("runmeta_db", DeterministicRNG("pool-m"), 150)
    fed.attach_database(server, ndb, logical_names={"NTUPLE": "ntuple"})
    fed.attach_database(server, mdb, logical_names={"RUNMETA": "runmeta"})
    client = fed.client("laptop")
    return fed, server, client


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for label, pooling in (("prototype", False), ("pooled", True)):
        fed, server, client = build(pooling)
        times = []
        for _ in range(N_QUERIES):
            outcome = fed.query(client, server, QUERY)
            times.append(outcome.response_ms)
        out[label] = times
    widths = [10, 12, 12, 12]
    lines = [fmt_row(["mode", "first ms", "steady ms", "mean ms"], widths)]
    for label in ("prototype", "pooled"):
        times = out[label]
        steady = sum(times[1:]) / len(times[1:])
        lines.append(
            fmt_row(
                [label, f"{times[0]:.1f}", f"{steady:.1f}",
                 f"{sum(times) / len(times):.1f}"],
                widths,
            )
        )
    lines += [
        "",
        "the Table 1 distributed query (MySQL via POOL-RAL + MS SQL via JDBC),",
        f"repeated {N_QUERIES}x. Pooling pays one connect, then reuses it —",
        "the distributed penalty the paper measured is mostly connection churn.",
    ]
    write_report("ablation_pooling", "Ablation E — JDBC Connection Pooling", lines)
    return out


class TestPoolingAblation:
    def test_first_query_still_pays_the_connect(self, comparison, benchmark):
        """A cold pool still dials: only the per-query XSpec re-parse is
        saved on the first query (metadata is cached with the pool)."""
        from repro.net import costs

        proto, pooled = comparison["prototype"][0], comparison["pooled"][0]
        assert pooled == pytest.approx(proto - costs.UNITY_METADATA_PARSE_MS, rel=0.05)
        benchmark(lambda: None)

    def test_steady_state_dramatically_cheaper(self, comparison, benchmark):
        proto_steady = sum(comparison["prototype"][1:]) / (N_QUERIES - 1)
        pooled_steady = sum(comparison["pooled"][1:]) / (N_QUERIES - 1)
        assert pooled_steady < proto_steady / 3
        benchmark(lambda: None)

    def test_prototype_times_are_flat(self, comparison, benchmark):
        """Without pooling every repetition pays the full connect."""
        times = comparison["prototype"]
        assert max(times) - min(times) < 0.1 * max(times)
        benchmark(lambda: None)

    def test_pooled_real_time(self, comparison, benchmark):
        fed, server, client = build(jdbc_pooling=True)
        server.service.execute(QUERY)  # warm
        benchmark(lambda: server.service.execute(QUERY))

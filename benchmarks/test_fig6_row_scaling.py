"""Figure 6 — Response time versus number of rows requested (§5.2).

Paper: queries against the ntuple data returning 21..2551 rows through
the JClarens web interface; response grows linearly from ~300 ms to
~700 ms ("increasing the number of rows from 21 to 2551 only increases
the response time from about 300 to 700 ms").
"""

import numpy as np
import pytest

from repro.common.rng import DeterministicRNG
from repro.core import GridFederation
from repro.hep.testbed import _make_ntuple_db

from benchmarks.conftest import fmt_row, write_report

#: the paper's x-axis points
ROW_COUNTS = [21, 51, 301, 451, 700, 801, 901, 1701, 1751, 2251, 2451, 2551]
PAPER_ENDPOINTS = (300.0, 700.0)


@pytest.fixture(scope="module")
def fig6_world():
    fed = GridFederation()
    # the prototype served ntuple queries through the Unity/JDBC path
    server = fed.create_server("jclarens1", "pc1.caltech.edu", force_jdbc=True)
    db = _make_ntuple_db("ntuple_db", DeterministicRNG("fig6"), 3000, 150)
    fed.attach_database(server, db, logical_names={"NTUPLE": "ntuple"})
    client = fed.client("client.cern.ch")
    return fed, server, client


@pytest.fixture(scope="module")
def series(fig6_world):
    fed, server, client = fig6_world
    points = []
    for rows in ROW_COUNTS:
        outcome = fed.query(
            client,
            server,
            f"SELECT event_id, e, px, py FROM ntuple WHERE event_id <= {rows}",
        )
        assert outcome.answer.row_count == rows
        points.append((rows, outcome.response_ms))
    lines = [fmt_row(["rows", "measured ms"], [6, 12])]
    lines += [fmt_row([r, f"{ms:.1f}"], [6, 12]) for r, ms in points]
    slope = (points[-1][1] - points[0][1]) / (points[-1][0] - points[0][0])
    lines += [
        "",
        f"paper endpoints: ~{PAPER_ENDPOINTS[0]:.0f} ms @ {ROW_COUNTS[0]} rows, "
        f"~{PAPER_ENDPOINTS[1]:.0f} ms @ {ROW_COUNTS[-1]} rows",
        f"measured slope: {slope:.3f} ms/row (paper: ~0.158 ms/row)",
    ]
    write_report("fig6_row_scaling", "Figure 6 — Response Time vs Rows Requested", lines)
    return points


class TestFig6:
    def test_endpoints_match_paper(self, series, benchmark):
        first, last = series[0][1], series[-1][1]
        assert first == pytest.approx(PAPER_ENDPOINTS[0], rel=0.25)
        assert last == pytest.approx(PAPER_ENDPOINTS[1], rel=0.25)
        benchmark(lambda: None)

    def test_growth_is_linear(self, series, benchmark):
        """Least-squares fit must explain (R^2 > 0.99) the series."""
        xs = np.array([p[0] for p in series], dtype=float)
        ys = np.array([p[1] for p in series], dtype=float)
        slope, intercept = np.polyfit(xs, ys, 1)
        predicted = slope * xs + intercept
        ss_res = float(((ys - predicted) ** 2).sum())
        ss_tot = float(((ys - ys.mean()) ** 2).sum())
        assert 1 - ss_res / ss_tot > 0.99
        assert 0.05 < slope < 0.4  # paper: ~0.158 ms/row
        benchmark(lambda: np.polyfit(xs, ys, 1))

    def test_monotone_in_rows(self, series, benchmark):
        times = [p[1] for p in series]
        assert all(b >= a for a, b in zip(times, times[1:]))
        benchmark(lambda: None)

    def test_scalability_headline(self, series, fig6_world, benchmark):
        """121x more rows costs only ~2.3x the response time (§5.2)."""
        first, last = series[0][1], series[-1][1]
        assert last / first < 3.0
        fed, server, client = fig6_world
        benchmark(
            lambda: server.service.execute(
                "SELECT event_id, e FROM ntuple WHERE event_id <= 301"
            )
        )

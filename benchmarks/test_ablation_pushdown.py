"""Ablation D — predicate pushdown vs the original Unity behaviour.

§3: the stock Unity driver "does not do any load distribution ... if
there is a lot of data to be fetched for a query, the memory becomes
overloaded". Our enhancement pushes single-table predicates and fetches
only the needed columns; with ``pushdown=False`` the driver behaves
like stock Unity (whole tables into middleware memory).
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.dialects import get_dialect
from repro.driver import Directory
from repro.engine import Database
from repro.metadata import DataDictionary, generate_lower_xspec
from repro.net import Network, SimClock
from repro.unity import UnityDriver

from benchmarks.conftest import fmt_row, write_report

QUERY = (
    "SELECT n.event_id, m.detector FROM ntuple n JOIN runmeta m "
    "ON n.run_id = m.run_id WHERE n.event_id <= 50"
)


def build():
    from repro.hep.testbed import _make_ntuple_db, _make_runmeta_db

    directory = Directory()
    dictionary = DataDictionary()
    network = Network()
    network.add_host("dbhost")
    network.add_host("driverhost")

    ndb = _make_ntuple_db("ntuple_db", DeterministicRNG("push"), 5000, 200)
    nurl = get_dialect("mysql").make_url("dbhost", None, "ntuple_db")
    directory.register(nurl, ndb, host_name="dbhost")
    dictionary.add_database(
        generate_lower_xspec(ndb, logical_names={"NTUPLE": "ntuple"}), nurl
    )

    mdb = _make_runmeta_db("runmeta_db", DeterministicRNG("pushm"), 200)
    murl = get_dialect("mssql").make_url("dbhost", None, "runmeta_db")
    directory.register(murl, mdb, host_name="dbhost")
    dictionary.add_database(
        generate_lower_xspec(mdb, logical_names={"RUNMETA": "runmeta"}), murl
    )
    return directory, dictionary, network


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for label, pushdown in (("pushdown", True), ("stock-unity", False)):
        directory, dictionary, network = build()
        clock = SimClock()
        driver = UnityDriver(
            dictionary, directory, clock=clock, network=network, host="driverhost",
            pushdown=pushdown,
        )
        t0 = clock.now_ms
        result = driver.execute(QUERY)
        elapsed = clock.now_ms - t0
        fetched = sum(t.rows for t in result.traces)
        out[label] = (result, elapsed, fetched, network.bytes_moved)
    widths = [12, 12, 14, 14]
    lines = [fmt_row(["mode", "sim ms", "rows fetched", "bytes moved"], widths)]
    for label in ("pushdown", "stock-unity"):
        _, ms, rows, nbytes = out[label]
        lines.append(fmt_row([label, f"{ms:.1f}", rows, nbytes], widths))
    lines += [
        "",
        "stock Unity ships whole tables to the middleware and joins there —",
        "the paper's memory-overload criticism (Section 3).",
    ]
    write_report("ablation_pushdown", "Ablation D — Predicate Pushdown vs Stock Unity", lines)
    return out


class TestPushdownAblation:
    def test_same_final_answer(self, comparison, benchmark):
        a = comparison["pushdown"][0]
        b = comparison["stock-unity"][0]
        assert sorted(a.rows) == sorted(b.rows)
        benchmark(lambda: None)

    def test_pushdown_moves_far_fewer_rows(self, comparison, benchmark):
        fetched_push = comparison["pushdown"][2]
        fetched_stock = comparison["stock-unity"][2]
        assert fetched_stock > 10 * fetched_push
        benchmark(lambda: None)

    def test_pushdown_faster_in_simulated_time(self, comparison, benchmark):
        assert comparison["pushdown"][1] < comparison["stock-unity"][1]
        benchmark(lambda: None)

    def test_pushdown_moves_fewer_bytes(self, comparison, benchmark):
        assert comparison["pushdown"][3] < comparison["stock-unity"][3]
        directory, dictionary, network = build()
        driver = UnityDriver(dictionary, directory)
        benchmark(lambda: driver.execute(QUERY))

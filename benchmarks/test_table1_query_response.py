"""Table 1 — Query response time (§5.2).

Paper setup: two Clarens servers on a 100 Mbps LAN, six databases
(equally shared between MS SQL Server and MySQL), ~80,000 rows,
~1,700 tables. Three query classes:

=======================  ===========  ==========  ======
servers accessed         distributed  response    tables
=======================  ===========  ==========  ======
1                        No           38 ms       1
1                        Yes          487.5 ms    2
2                        Yes          594 ms      4
=======================  ===========  ==========  ======

We assert the paper's qualitative claims — distribution costs >10x,
adding a second server costs a further RLS lookup + forwarding — and
report simulated vs paper milliseconds.
"""

import pytest

from repro.hep.testbed import build_paper_testbed

from benchmarks.conftest import fmt_row, write_report

PAPER = {"local": 38.0, "dist_1srv": 487.5, "dist_2srv": 594.0}


@pytest.fixture(scope="module")
def testbed():
    return build_paper_testbed()


@pytest.fixture(scope="module")
def measured(testbed):
    tb = testbed
    fed, client, s1 = tb.federation, tb.client, tb.server1
    out = {}
    out["local"] = fed.query(client, s1, tb.QUERY_LOCAL)
    out["dist_1srv"] = fed.query(client, s1, tb.QUERY_DISTRIBUTED_1SRV)
    out["dist_2srv"] = fed.query(client, s1, tb.QUERY_DISTRIBUTED_2SRV)
    rows = [
        fmt_row(["servers", "distributed", "tables", "paper ms", "measured ms"], [8, 11, 6, 9, 11]),
        fmt_row([1, "No", 1, PAPER["local"], f"{out['local'].response_ms:.1f}"], [8, 11, 6, 9, 11]),
        fmt_row([1, "Yes", 2, PAPER["dist_1srv"], f"{out['dist_1srv'].response_ms:.1f}"], [8, 11, 6, 9, 11]),
        fmt_row([2, "Yes", 4, PAPER["dist_2srv"], f"{out['dist_2srv'].response_ms:.1f}"], [8, 11, 6, 9, 11]),
        "",
        f"testbed: {tb.total_tables} tables, {tb.total_rows} rows across 6 databases",
        f"distribution penalty: {out['dist_1srv'].response_ms / out['local'].response_ms:.1f}x (paper: 12.8x)",
    ]
    write_report("table1_query_response", "Table 1 — Query Response Time", rows)
    return out


class TestTable1:
    def test_row1_local_query(self, testbed, measured, benchmark):
        outcome = measured["local"]
        assert outcome.answer.servers_accessed == 1
        assert not outcome.answer.distributed
        assert outcome.answer.tables_accessed == 1
        assert outcome.response_ms == pytest.approx(PAPER["local"], rel=0.25)
        benchmark(
            lambda: testbed.server1.service.execute(testbed.QUERY_LOCAL)
        )

    def test_row2_distributed_one_server(self, testbed, measured, benchmark):
        outcome = measured["dist_1srv"]
        assert outcome.answer.servers_accessed == 1
        assert outcome.answer.distributed
        assert outcome.answer.tables_accessed == 2
        assert outcome.response_ms == pytest.approx(PAPER["dist_1srv"], rel=0.25)
        benchmark(
            lambda: testbed.server1.service.execute(testbed.QUERY_DISTRIBUTED_1SRV)
        )

    def test_row3_distributed_two_servers(self, testbed, measured, benchmark):
        outcome = measured["dist_2srv"]
        assert outcome.answer.servers_accessed == 2
        assert outcome.answer.distributed
        assert outcome.answer.tables_accessed == 4
        assert outcome.response_ms == pytest.approx(PAPER["dist_2srv"], rel=0.25)
        benchmark(
            lambda: testbed.server1.service.execute(testbed.QUERY_DISTRIBUTED_2SRV)
        )

    def test_headline_distribution_penalty(self, measured, benchmark):
        """'response time ... more than 10 times slower' (§5.2)."""
        ratio = measured["dist_1srv"].response_ms / measured["local"].response_ms
        assert ratio > 10
        benchmark(lambda: ratio)

    def test_second_server_costs_more_than_one(self, measured, benchmark):
        assert measured["dist_2srv"].response_ms > measured["dist_1srv"].response_ms
        # ... but far less than double: the remote server works in parallel
        assert measured["dist_2srv"].response_ms < 1.5 * measured["dist_1srv"].response_ms
        benchmark(lambda: None)

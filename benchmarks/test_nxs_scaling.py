"""Supplementary bench — the N×S cost the paper's §4.2 argues about.

The paper motivates the warehouse with the claim that accessing N
database technologies with S schemas costs N×S implementations, and
that "all the related meta-data information has to be parsed" per
query. This bench makes the runtime half of the argument measurable:
response time of a query joining k JDBC-path databases grows linearly
in k, because every one of them pays its own metadata parse + connect +
authenticate.

It drives the standalone UnityDriver, which runs sub-queries serially
exactly like the prototype. (The federated service now executes
distinct local databases in parallel branches, so connect costs
overlap there and the per-database slope is no longer observable at
the service level — see the caching/parallelization notes in
DESIGN.md.)
"""

import numpy as np
import pytest

from repro.common.rng import DeterministicRNG
from repro.dialects import get_dialect
from repro.driver import Directory
from repro.engine import Database
from repro.metadata import DataDictionary, generate_lower_xspec
from repro.net.simclock import SimClock
from repro.unity.driver import UnityDriver

from benchmarks.conftest import fmt_row, write_report

MAX_DBS = 4


def build():
    """k MS SQL databases, each holding one table of a chained join."""
    directory = Directory()
    dictionary = DataDictionary()
    rng = DeterministicRNG("nxs")
    for k in range(MAX_DBS):
        db = Database(f"part{k}", "mssql")
        db.execute(
            f"CREATE TABLE T{k} (ID INT PRIMARY KEY, V DOUBLE)"
        )
        rows = [[i, float(rng.uniform(0, 1))] for i in range(200)]
        db.bulk_insert(f"T{k}", rows)
        url = get_dialect("mssql").make_url(f"pc{k}", None, f"part{k}")
        directory.register(url, db, host_name=f"pc{k}")
        dictionary.add_database(
            generate_lower_xspec(db, logical_names={f"T{k}": f"part{k}"}), url
        )
    clock = SimClock()
    driver = UnityDriver(dictionary, directory, clock=clock)
    return driver, clock


def chain_query(k: int) -> str:
    parts = ["SELECT p0.id FROM part0 p0"]
    for i in range(1, k):
        parts.append(f"JOIN part{i} p{i} ON p0.id = p{i}.id")
    parts.append("WHERE p0.id < 50")
    return " ".join(parts)


@pytest.fixture(scope="module")
def series():
    driver, clock = build()
    points = []
    for k in range(1, MAX_DBS + 1):
        t0 = clock.now_ms
        driver.execute(chain_query(k))
        points.append((k, clock.now_ms - t0))
    widths = [12, 14]
    lines = [fmt_row(["databases", "response ms"], widths)]
    lines += [fmt_row([k, f"{ms:.1f}"], widths) for k, ms in points]
    slope = (points[-1][1] - points[0][1]) / (MAX_DBS - 1)
    lines += [
        "",
        f"each added JDBC database costs ~{slope:.0f} ms (metadata parse +",
        "connect + authenticate) — the runtime face of the paper's NxS",
        "argument for the warehouse/dictionary design.",
    ]
    write_report("nxs_scaling", "Supplementary — Cost per JDBC Database (NxS)", lines)
    return points


class TestNxSScaling:
    def test_monotone_in_database_count(self, series, benchmark):
        times = [ms for _, ms in series]
        assert all(b > a for a, b in zip(times, times[1:]))
        benchmark(lambda: None)

    def test_roughly_linear(self, series, benchmark):
        ks = np.array([k for k, _ in series], dtype=float)
        ts = np.array([ms for _, ms in series], dtype=float)
        slope, intercept = np.polyfit(ks, ts, 1)
        predicted = slope * ks + intercept
        ss_res = float(((ts - predicted) ** 2).sum())
        ss_tot = float(((ts - ts.mean()) ** 2).sum())
        assert 1 - ss_res / ss_tot > 0.98
        benchmark(lambda: None)

    def test_per_database_cost_matches_vendor_constants(self, series, benchmark):
        from repro.net import costs

        cost = get_dialect("mssql").cost
        expected = cost.connect_ms + cost.auth_ms + costs.UNITY_METADATA_PARSE_MS
        slope = (series[-1][1] - series[0][1]) / (MAX_DBS - 1)
        assert slope == pytest.approx(expected, rel=0.15)
        benchmark(lambda: None)

    def test_real_time_of_widest_join(self, series, benchmark):
        driver, _clock = build()
        benchmark(lambda: driver.execute(chain_query(MAX_DBS)))

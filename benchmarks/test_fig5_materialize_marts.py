"""Figure 5 — Views extracted from the data warehouse and materialized
into data marts (§5.1, Stage 2).

Paper: view extracts of up to ~80 kB materialized into the marts
(MySQL, MS SQL Server, Oracle, SQLite); times reach tens of seconds —
several times slower per byte than the Stage-1 warehouse load, because
every mart row is an autocommitted single INSERT (no multi-row VALUES
on the 2005 vendors).
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.engine import Database
from repro.hep import (
    create_source_schema,
    etl_jobs_for_source,
    events_for_target_kb,
    generate_ntuple,
    populate_source,
)
from repro.marts import MartSet
from repro.net import Network, SimClock
from repro.warehouse import Warehouse

from benchmarks.conftest import fmt_row, write_report

#: the paper's Figure-5 x-axis range (kB of view data)
SIZES_KB = [5, 15, 30, 45, 60, 70, 80]
NVAR = 8
MART_VENDORS = ["mysql", "mssql", "oracle", "sqlite"]


def run_stage2(kb: float):
    """Materialize a ~kb view into the four vendor marts; sum phases."""
    n_events = events_for_target_kb(kb, NVAR)
    rng = DeterministicRNG(f"fig5-{kb}")
    source = Database("tier1_source", "oracle")
    create_source_schema(source)
    populate_source(source, rng, {1: generate_ntuple(rng.fork("nt"), n_events, NVAR)})
    network = Network()
    network.add_host("tier1.cern.ch", 1)
    clock = SimClock()
    warehouse = Warehouse(network, clock, nvar=NVAR)
    warehouse.load(etl_jobs_for_source(source, "tier1.cern.ch", NVAR)[0])
    marts = MartSet(warehouse)
    for i, vendor in enumerate(MART_VENDORS):
        marts.add_mart(Database(f"mart_{vendor}", vendor), f"mart{i}.caltech.edu")
    reports = marts.replicate(["v_event_wide"])
    view_kb = reports[0].staged_kb
    extract_s = sum(r.extraction_s for r in reports)
    load_s = sum(r.loading_s for r in reports)
    return view_kb, extract_s, load_s, reports


@pytest.fixture(scope="module")
def sweep():
    results = [run_stage2(kb) for kb in SIZES_KB]
    widths = [10, 10, 12, 10]
    lines = [fmt_row(["target kB", "view kB", "extract s", "load s"], widths)]
    for kb, (view_kb, ex, ld, _) in zip(SIZES_KB, results):
        lines.append(
            fmt_row([f"{kb:.0f}", f"{view_kb:.2f}", f"{ex:.2f}", f"{ld:.2f}"], widths)
        )
    lines += [
        "",
        "paper: at ~70 kB the loading (upper) line reaches ~80 s; loading",
        "sits far above extraction; per-byte cost is several times the",
        "Stage-1 (Figure 4) warehouse load because of per-row autocommit.",
        f"(materialized into {len(MART_VENDORS)} marts: {', '.join(MART_VENDORS)})",
    ]
    write_report("fig5_materialize_marts", "Figure 5 — Warehouse -> Data Marts", lines)
    return results


class TestFig5:
    def test_loading_dominates_extraction(self, sweep, benchmark):
        for _, ex, ld, _ in sweep:
            assert ld > ex
        benchmark(lambda: None)

    def test_times_grow_with_size(self, sweep, benchmark):
        loads = [ld for _, _, ld, _ in sweep]
        assert all(b > a for a, b in zip(loads, loads[1:]))
        benchmark(lambda: None)

    def test_mart_load_slower_per_byte_than_warehouse_load(self, sweep, benchmark):
        """The Figure 5 vs Figure 4 crossover: marts are >=5x worse."""
        from benchmarks.test_fig4_etl_warehouse import run_stage1

        wh = run_stage1(70.0)
        view_kb, _, ld, _ = run_stage2(70.0)
        mart_per_kb = ld / view_kb
        wh_per_kb = wh.loading_s / wh.staged_kb
        assert mart_per_kb > 5 * wh_per_kb
        benchmark(lambda: None)

    def test_70kb_point_matches_paper_scale(self, sweep, benchmark):
        view_kb, _, ld, _ = run_stage2(70.0)
        # paper's upper line at ~70 kB: tens of seconds (read ~80 s)
        assert 40.0 < ld < 120.0
        benchmark(lambda: run_stage2(5.0))

    def test_every_vendor_mart_received_the_view(self, sweep, benchmark):
        _, _, _, reports = sweep[-1]
        assert len(reports) == len(MART_VENDORS)
        rows = {r.rows for r in reports}
        assert len(rows) == 1  # same view, same rows, every vendor
        benchmark(lambda: None)

"""Supplementary bench — response time by query class.

Not a paper table, but the natural capacity-study companion to Table 1:
mean simulated response per query shape (point lookup, range scan,
per-run aggregate, local cross-database join, cross-server join) on the
paper's testbed. Confirms the cost structure Table 1 implies: everything
local-and-POOL-routed is tens of ms; anything touching the JDBC path or
a remote server jumps by an order of magnitude.
"""

import pytest

from repro.common import DeterministicRNG
from repro.hep.queries import QueryWorkload, WorkloadConfig
from repro.hep.testbed import build_paper_testbed

from benchmarks.conftest import fmt_row, write_report

N_EACH = 5


@pytest.fixture(scope="module")
def mix_results():
    tb = build_paper_testbed()
    wl = QueryWorkload(
        DeterministicRNG("query-mix"),
        WorkloadConfig(max_event_id=3000, max_run_id=150),
    )
    service = tb.server1.service
    clock = tb.federation.clock
    means: dict[str, float] = {}
    for kind, specs in wl.by_kind(N_EACH).items():
        total = 0.0
        for spec in specs:
            start = clock.now_ms
            service.execute(spec.sql)
            total += clock.now_ms - start
        means[kind] = total / len(specs)
    widths = [12, 14]
    lines = [fmt_row(["class", "mean ms"], widths)]
    for kind in ("point", "range", "aggregate", "join", "distributed"):
        lines.append(fmt_row([kind, f"{means[kind]:.1f}"], widths))
    lines += [
        "",
        f"{N_EACH} queries per class on the Table 1 testbed; 'join' touches",
        "the MS SQL runmeta mart (JDBC path), 'distributed' crosses to the",
        "second server via RLS forwarding but stays POOL-routed on both",
        "sides — a fresh JDBC connect costs more than a server hop.",
    ]
    write_report("query_mix", "Supplementary — Response Time by Query Class", lines)
    return tb, means


class TestQueryMix:
    def test_pool_routed_classes_are_fast(self, mix_results, benchmark):
        _, means = mix_results
        for kind in ("point", "range", "aggregate"):
            assert means[kind] < 120
        benchmark(lambda: None)

    def test_jdbc_join_an_order_of_magnitude_slower(self, mix_results, benchmark):
        _, means = mix_results
        assert means["join"] > 5 * means["point"]
        benchmark(lambda: None)

    def test_server_hop_cheaper_than_jdbc_connect(self, mix_results, benchmark):
        """Crossing servers (POOL both sides) beats one fresh JDBC connect."""
        _, means = mix_results
        assert means["distributed"] > max(
            means[k] for k in ("point", "range", "aggregate")
        )
        assert means["distributed"] < means["join"]
        benchmark(lambda: None)

    def test_real_time_of_point_lookup(self, mix_results, benchmark):
        tb, _ = mix_results
        wl = QueryWorkload(DeterministicRNG("rt"))
        spec = wl.point_lookup()
        benchmark(lambda: tb.server1.service.execute(spec.sql))

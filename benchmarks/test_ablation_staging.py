"""Ablation A — the staging-file bottleneck (§5.1).

The paper: "the use of the temporary staging file during the process is
a performance bottleneck, and we are working on a cleaner way of
loading the warehouse directly from the normalized databases."
This bench quantifies that future-work claim: the same Stage-1 sweep
run through the staged pipeline vs the direct (no temp file) pipeline.
"""

import pytest

from benchmarks.conftest import fmt_row, write_report
from benchmarks.test_fig4_etl_warehouse import SIZES_KB, run_stage1


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for kb in SIZES_KB[1:]:
        staged = run_stage1(kb, direct=False)
        direct = run_stage1(kb, direct=True)
        staged_total = staged.extraction_s + staged.loading_s
        direct_total = direct.extraction_s + direct.loading_s
        rows.append((kb, staged_total, direct_total))
    widths = [10, 10, 10, 8]
    lines = [fmt_row(["kB", "staged s", "direct s", "saved"], widths)]
    for kb, s, d in rows:
        lines.append(
            fmt_row([f"{kb:.3f}", f"{s:.2f}", f"{d:.2f}", f"{(1 - d / s) * 100:.0f}%"], widths)
        )
    lines += ["", "direct loading skips the temp-file write+read and one stream open/close."]
    write_report("ablation_staging", "Ablation A — Staged vs Direct ETL", lines)
    return rows


class TestStagingAblation:
    def test_direct_is_always_faster(self, comparison, benchmark):
        for _, staged, direct in comparison:
            assert direct < staged
        benchmark(lambda: None)

    def test_direct_produces_identical_rows(self, comparison, benchmark):
        staged = run_stage1(12.721, direct=False)
        direct = run_stage1(12.721, direct=True)
        assert staged.rows == direct.rows
        benchmark(lambda: None)

    def test_savings_are_disk_bound_not_constant(self, comparison, benchmark):
        """Absolute savings grow with size (the temp file scales)."""
        savings = [s - d for _, s, d in comparison]
        assert savings[-1] > savings[0]
        benchmark(lambda: run_stage1(8.217, direct=True))

"""Observability overhead — Table 1 query mix, observe on vs off.

The obs stack (tracer + profiler + archiver + SLO engine) is opt-in and
must stay cheap enough to leave on: this bench runs the three Table 1
query classes on two identically-seeded paper testbeds, one with
``observe=False`` and one with ``observe=True``, and measures the real
(host) CPU cost of each full mix. Asserted bounds:

* answers are **bit-for-bit identical** in both modes;
* simulated response times match within ``MAX_SIM_OVERHEAD`` — spans
  never advance the virtual clock, but remote spans piggyback on
  forwarded responses and the network model honestly charges their
  bytes, so distributed queries pay a sub-percent wire tax;
* the real-time overhead of the observed mix stays under
  ``MAX_OVERHEAD_RATIO``.

Emits ``benchmarks/results/BENCH_obs.json``. Deliberately avoids the
pytest-benchmark fixture so this file runs under a plain pytest
install (CI executes it directly).
"""

import json
import time

import pytest

from repro.hep.testbed import build_paper_testbed

from benchmarks.conftest import RESULTS_DIR, fmt_row, write_report

#: generous real-time bound: the observed mix may not cost more than
#: this multiple of the unobserved mix (typical measured ratio ~1.1-1.5)
MAX_OVERHEAD_RATIO = 5.0
#: simulated-time tolerance: piggybacked span bytes on the wire
MAX_SIM_OVERHEAD = 0.01
REPS = 5


def _query_mix(tb) -> dict[str, str]:
    return {
        "local": tb.QUERY_LOCAL,
        "dist_1srv": tb.QUERY_DISTRIBUTED_1SRV,
        "dist_2srv": tb.QUERY_DISTRIBUTED_2SRV,
    }


def _run_mix(tb) -> tuple[float, dict]:
    """One pass over the mix: (real seconds, per-query outcomes)."""
    service = tb.server1.service
    outcomes = {}
    t0 = time.perf_counter()
    for name, sql in _query_mix(tb).items():
        clock0 = tb.federation.clock.now_ms
        answer = service.execute(sql)
        outcomes[name] = {
            "rows": answer.rows,
            "columns": answer.columns,
            "sim_ms": tb.federation.clock.now_ms - clock0,
        }
    return time.perf_counter() - t0, outcomes


@pytest.fixture(scope="module")
def measured():
    """REPS timed passes per mode on identically-seeded testbeds."""
    modes = {}
    for observe in (False, True):
        tb = build_paper_testbed(observe=observe)
        times = []
        outcomes = None
        for _ in range(REPS):
            elapsed, outcomes = _run_mix(tb)
            times.append(elapsed)
        modes[observe] = {
            "testbed": tb,
            # min is the noise-robust estimate of the true cost
            "best_s": min(times),
            "times_s": times,
            "outcomes": outcomes,
        }

    ratio = modes[True]["best_s"] / modes[False]["best_s"]
    artifact = {
        "reps": REPS,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "observe_off_best_ms": round(modes[False]["best_s"] * 1e3, 3),
        "observe_on_best_ms": round(modes[True]["best_s"] * 1e3, 3),
        "overhead_ratio": round(ratio, 3),
        "queries": {
            name: {
                "sim_ms_off": round(modes[False]["outcomes"][name]["sim_ms"], 3),
                "sim_ms_on": round(modes[True]["outcomes"][name]["sim_ms"], 3),
                "rows_identical": (
                    modes[False]["outcomes"][name]["rows"]
                    == modes[True]["outcomes"][name]["rows"]
                ),
            }
            for name in modes[False]["outcomes"]
        },
        "observed_server": {
            "profiles_recorded": modes[True]["testbed"]
            .server1.service.profiler.profiled,
            "archive_snapshots": modes[True]["testbed"]
            .server1.service.archiver.snapshots,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_obs.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    widths = [10, 11, 11, 10]
    lines = [
        fmt_row(["query", "sim ms off", "sim ms on", "identical"], widths),
        *[
            fmt_row(
                [
                    name,
                    q["sim_ms_off"],
                    q["sim_ms_on"],
                    str(q["rows_identical"]),
                ],
                widths,
            )
            for name, q in artifact["queries"].items()
        ],
        "",
        f"real time (best of {REPS} mixes): "
        f"off {artifact['observe_off_best_ms']} ms, "
        f"on {artifact['observe_on_best_ms']} ms "
        f"-> {artifact['overhead_ratio']}x (bound {MAX_OVERHEAD_RATIO}x)",
        f"artifact: {path.name}",
    ]
    write_report(
        "obs_overhead", "Observability Overhead — Observe On vs Off", lines
    )
    return modes, artifact


class TestObsOverhead:
    def test_rows_bit_for_bit_identical(self, measured):
        modes, _ = measured
        for name in modes[False]["outcomes"]:
            off = modes[False]["outcomes"][name]
            on = modes[True]["outcomes"][name]
            assert off["rows"] == on["rows"], name
            assert off["columns"] == on["columns"], name

    def test_observation_nearly_free_in_simulated_time(self, measured):
        """Local queries: exactly free. Distributed: only the wire tax."""
        modes, _ = measured
        for name in modes[False]["outcomes"]:
            off = modes[False]["outcomes"][name]["sim_ms"]
            on = modes[True]["outcomes"][name]["sim_ms"]
            if name == "local":
                assert on == pytest.approx(off, abs=1e-9), name
            else:
                assert on == pytest.approx(off, rel=MAX_SIM_OVERHEAD), name

    def test_real_overhead_under_bound(self, measured):
        _, artifact = measured
        assert artifact["overhead_ratio"] < MAX_OVERHEAD_RATIO, artifact

    def test_unobserved_service_allocates_nothing(self, measured):
        modes, _ = measured
        service = modes[False]["testbed"].server1.service
        assert service.tracer is None
        assert service.profiler is None
        assert service.archiver is None
        assert service.slo is None
        assert service.monitor is None

    def test_observed_stack_actually_worked(self, measured):
        _, artifact = measured
        observed = artifact["observed_server"]
        assert observed["profiles_recorded"] >= 3 * REPS
        assert observed["archive_snapshots"] >= 1

    def test_artifact_emitted(self, measured):
        artifact = json.loads((RESULTS_DIR / "BENCH_obs.json").read_text())
        assert artifact["overhead_ratio"] < artifact["max_overhead_ratio"]
        for entry in artifact["queries"].values():
            assert entry["rows_identical"]

"""Federation trace bench — the observability layer's own artifact.

Runs the demo distributed query through two observing JClarens servers
and emits ``benchmarks/results/BENCH_federation.json`` via the same
report path as ``python -m repro.tools.tracereport --json``: one span
tree covering decompose → per-sub-query route/execute/transfer → merge
across both servers, plus each server's metrics snapshot.
"""

import json

from repro.obs.trace import Span, format_span_tree
from repro.tools.tracereport import build_report

from benchmarks.conftest import RESULTS_DIR, write_report


def _emit(report: dict):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_federation.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


class TestFederationTrace:
    def test_emit_artifact(self, benchmark):
        report = build_report()
        path = _emit(report)
        assert json.loads(path.read_text())["trace_id"] == report["trace_id"]
        lines = [
            f"trace {report['trace_id']}: {report['total_ms']} simulated ms,"
            f" {len(report['spans'])} spans, {report['rows']} rows",
            f"artifact: {path.name}",
            "",
            *report["tree"],
        ]
        write_report(
            "federation_trace", "Federation-Wide Query Trace", lines
        )
        benchmark(lambda: None)

    def test_trace_covers_whole_lifecycle(self, benchmark):
        report = build_report()
        stages = {Span.from_dict(d).stage for d in report["spans"]}
        assert {"query", "decompose", "subquery", "transfer", "merge"} <= stages
        benchmark(lambda: None)

    def test_remote_spans_parent_into_origin_tree(self, benchmark):
        report = build_report()
        spans = [Span.from_dict(d) for d in report["spans"]]
        tree = format_span_tree(spans)
        # one root line (no glyph) and every span rendered exactly once
        assert len(tree) == len(spans)
        assert sum(1 for line in tree if not line.startswith(("├", "└", "│", " "))) == 1
        benchmark(lambda: build_report())

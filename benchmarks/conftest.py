"""Benchmark harness helpers.

Every bench reproduces one table or figure of the paper. Two kinds of
numbers come out of each:

* **simulated milliseconds/seconds** — the paper-comparable quantity,
  deterministic, computed on the virtual clock; printed as a
  paper-vs-measured table and written to ``benchmarks/results/``;
* **real time** — what pytest-benchmark measures: the actual CPU cost
  of the middleware code under test on this machine.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, title: str, lines: list[str]) -> pathlib.Path:
    """Persist a human-readable experiment report and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join([title, "=" * len(title), *lines, ""])
    path.write_text(text)
    print("\n" + text)
    return path


def fmt_row(cells, widths) -> str:
    return " | ".join(str(c).rjust(w) for c, w in zip(cells, widths))

"""Extension bench — wide-area distribution and replica selection.

§6 future work, implemented and measured: "testing the system for query
distribution on geographically distributed databases ... over wide area
networks" and "a system that could decide the closest available
database (in terms of network connectivity) from a set of replicated
databases."

Scenario: the two-server deployment of Table 1, but the second server
sits across a WAN (10 Mbps, 45 ms). Without replica awareness, a query
against a table replicated on both sides may be served from the far
copy; the proximity selector pins it to the near one.
"""

import pytest

from repro.common.rng import DeterministicRNG
from repro.core import GridFederation
from repro.core.replicas import ReplicaSelector
from repro.hep.testbed import _make_ntuple_db
from repro.net.network import WAN

from benchmarks.conftest import fmt_row, write_report

QUERY = "SELECT event_id, e FROM events WHERE event_id <= 500"


def build(selection: bool):
    fed = GridFederation()
    server = fed.create_server("jc1", "site-a", replica_selection=selection)
    # replicas hold identical data (same deterministic stream)
    near = _make_ntuple_db("near_replica", DeterministicRNG("wan"), 2000, 100)
    far = _make_ntuple_db("far_replica", DeterministicRNG("wan"), 2000, 100)
    # register the FAR copy first: a naive dictionary picks it
    fed.attach_database(
        server, far, db_host="site-b", logical_names={"NTUPLE": "events"}
    )
    fed.attach_database(
        server, near, db_host="site-a", logical_names={"NTUPLE": "events"}
    )
    fed.network.set_link("site-a", "site-b", WAN)
    client = fed.client("site-a-laptop")
    return fed, server, client


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for label, selection in (("naive", False), ("proximity", True)):
        fed, server, client = build(selection)
        outcome = fed.query(client, server, QUERY)
        out[label] = outcome
    widths = [12, 14]
    lines = [
        fmt_row(["policy", "response ms"], widths),
        fmt_row(["naive", f"{out['naive'].response_ms:.1f}"], widths),
        fmt_row(["proximity", f"{out['proximity'].response_ms:.1f}"], widths),
        "",
        "naive: dictionary order picks the WAN replica (10 Mbps / 45 ms);",
        "proximity: the ReplicaSelector pins the query to the local copy.",
    ]
    write_report("ext_wan_replicas", "Extension — WAN Replica Selection", lines)
    return out


class TestWANReplicaSelection:
    def test_same_answer_either_policy(self, comparison, benchmark):
        assert comparison["naive"].answer.rows == comparison["proximity"].answer.rows
        benchmark(lambda: None)

    def test_proximity_beats_naive_over_wan(self, comparison, benchmark):
        assert comparison["proximity"].response_ms < comparison["naive"].response_ms
        benchmark(lambda: None)

    def test_wan_penalty_is_link_bound(self, comparison, benchmark):
        """The naive policy pays at least one WAN hop + payload extra."""
        delta = comparison["naive"].response_ms - comparison["proximity"].response_ms
        assert delta > WAN.latency_ms
        benchmark(lambda: None)

    def test_selector_ranking_is_stable(self, benchmark):
        fed, server, _ = build(selection=True)
        selector = ReplicaSelector(fed.network, fed.directory, "site-a")
        first = selector.rank(server.service.dictionary, "events")
        second = selector.rank(server.service.dictionary, "events")
        assert [c.location.database_name for c in first] == [
            c.location.database_name for c in second
        ]
        assert first[0].location.database_name == "near_replica"
        benchmark(lambda: selector.rank(server.service.dictionary, "events"))

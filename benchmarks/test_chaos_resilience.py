"""Chaos resilience bench — scripted host failures under a live workload.

Drives a resilient federation ("events" replicated on two database
hosts) through a :class:`~repro.resilience.ChaosSchedule` that kills
each replica host alone, then both together, then restores everything.
The client keeps querying with ``allow_partial`` on. Asserts the §4.8
resilience contract: every query either succeeds with the ground-truth
rows or comes back flagged partial — never silently wrong — and once
the circuit breakers open, a dead backend is skipped without paying the
``PARTITION_TIMEOUT_MS`` wire penalty (bounded steady-state p99).
Emits ``benchmarks/results/BENCH_chaos.json``.

Deliberately avoids the pytest-benchmark fixture so this file runs
under a plain pytest install (CI executes it next to the cache bench).
"""

import json
import math

import pytest

from repro.core import GridFederation
from repro.engine import Database
from repro.net import costs
from repro.resilience import BreakerConfig, ChaosSchedule, ResilienceConfig

from benchmarks.conftest import RESULTS_DIR, fmt_row, write_report

SQL = "SELECT COUNT(*), SUM(energy) FROM events"
SPACING_MS = 500.0
COOLDOWN_MS = 60_000.0  # probes deferred past the blackout window
PHASE_QUERIES = {
    "healthy": 4,
    "db1_dead": 4,
    "db2_dead": 4,
    "blackout": 14,
    "recovered": 4,
}


def _events_db(name, vendor="mysql", n=40):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 0.5})")
    return db


def _p99(latencies):
    """Nearest-rank p99 (matches the metrics registry's convention)."""
    if not latencies:
        return None
    ordered = sorted(latencies)
    rank = max(1, math.ceil(0.99 * len(ordered)))
    return ordered[rank - 1]


@pytest.fixture(scope="module")
def measured():
    fed = GridFederation()
    config = ResilienceConfig(breaker=BreakerConfig(cooldown_ms=COOLDOWN_MS))
    # replica_selection makes the planner prefer reachable replicas, so
    # a single dead host is routed around without paying any timeout
    server = fed.create_server(
        "jc1", "tier2a.cern.ch", resilience=config, replica_selection=True
    )
    fed.attach_database(
        server, _events_db("primary_mart"),
        db_host="db1.cern.ch", logical_names={"EVT": "events"},
    )
    fed.attach_database(
        server, _events_db("replica_mart", vendor="sqlite"),
        db_host="db2.cern.ch", logical_names={"EVT": "events"},
    )
    client = fed.client("laptop.caltech.edu")

    truth = fed.query(client, server, SQL).answer.rows
    base = fed.clock.now_ms

    # each replica host dies alone, then both die, then all restored
    schedule = (
        ChaosSchedule()
        .fail_host(base + 2_100, "db1.cern.ch")
        .restore_host(base + 4_100, "db1.cern.ch")
        .fail_host(base + 4_100, "db2.cern.ch")
        .fail_host(base + 6_400, "db1.cern.ch")
        .restore_host(base + 120_000, "db1.cern.ch")
        .restore_host(base + 120_000, "db2.cern.ch")
    )
    driver = schedule.driver(fed.network, fed.clock)
    assert set(schedule.hosts_killed()) == {"db1.cern.ch", "db2.cern.ch"}

    phase_starts = {
        "healthy": base,
        "db1_dead": base + 2_500,
        "db2_dead": base + 4_500,
        "blackout": base + 6_700,
        "recovered": base + 190_000,  # past restore + breaker cooldown
    }
    samples = []
    for phase, count in PHASE_QUERIES.items():
        if fed.clock.now_ms < phase_starts[phase]:
            fed.clock.advance_ms(phase_starts[phase] - fed.clock.now_ms)
        for _ in range(count):
            driver.tick()
            t0 = fed.clock.now_ms
            outcome = fed.query(client, server, SQL, allow_partial=True)
            latency = fed.clock.now_ms - t0
            answer = outcome.answer
            if answer.partial:
                kind = "partial"
                assert answer.failures, "partial answer must carry provenance"
            else:
                kind = "ok" if answer.rows == truth else "WRONG"
            samples.append(
                {
                    "phase": phase,
                    "at_ms": round(t0 - base, 1),
                    "outcome": kind,
                    "latency_ms": round(latency, 3),
                }
            )
            fed.clock.advance_ms(SPACING_MS)
    driver.finish()

    blackout = [s for s in samples if s["phase"] == "blackout"]
    steady = blackout[len(blackout) // 2 :]
    stats = server.service.stats()
    artifact = {
        "sql": SQL,
        "partition_timeout_ms": costs.PARTITION_TIMEOUT_MS,
        "samples": samples,
        "outcomes": {
            kind: sum(1 for s in samples if s["outcome"] == kind)
            for kind in ("ok", "partial", "WRONG")
        },
        "steady_state_p99_ms": _p99([s["latency_ms"] for s in steady]),
        "blackout_first_latency_ms": blackout[0]["latency_ms"],
        "resilience": stats["resilience"],
        "partial_answers": stats["partial_answers"],
        "net_partition_timeouts": fed.network.partition_timeouts,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_chaos.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    widths = [10, 10, 8, 12]
    lines = [
        fmt_row(["phase", "at ms", "outcome", "latency ms"], widths),
        *[
            fmt_row(
                [s["phase"], s["at_ms"], s["outcome"], s["latency_ms"]], widths
            )
            for s in samples
        ],
        "",
        f"steady-state p99: {artifact['steady_state_p99_ms']} ms "
        f"(partition timeout {costs.PARTITION_TIMEOUT_MS} ms)",
        f"artifact: {path.name}",
    ]
    write_report("chaos_resilience", "Chaos Resilience — Scripted Host Failures", lines)
    return {"samples": samples, "steady": steady, "artifact": artifact, "truth": truth}


class TestChaosResilience:
    def test_never_silently_wrong(self, measured):
        """Every query succeeds with the truth or is flagged partial."""
        assert all(s["outcome"] in ("ok", "partial") for s in measured["samples"])

    def test_single_host_failures_fail_over(self, measured):
        """With one replica left, queries still answer in full."""
        for phase in ("db1_dead", "db2_dead"):
            phase_samples = [s for s in measured["samples"] if s["phase"] == phase]
            assert phase_samples, phase
            assert all(s["outcome"] == "ok" for s in phase_samples), phase

    def test_blackout_produces_flagged_partials(self, measured):
        blackout = [s for s in measured["samples"] if s["phase"] == "blackout"]
        assert all(s["outcome"] == "partial" for s in blackout)

    def test_breakers_opened_under_blackout(self, measured):
        breakers = measured["artifact"]["resilience"]["breakers"]
        assert any(b["opens"] >= 1 for b in breakers.values())
        assert any(b["fast_fails"] >= 1 for b in breakers.values())

    def test_steady_state_p99_beats_partition_timeout(self, measured):
        """Open breakers skip dead backends without paying the timeout."""
        p99 = measured["artifact"]["steady_state_p99_ms"]
        assert p99 is not None
        assert p99 < costs.PARTITION_TIMEOUT_MS

    def test_recovery_returns_ground_truth(self, measured):
        recovered = [s for s in measured["samples"] if s["phase"] == "recovered"]
        assert recovered
        assert all(s["outcome"] == "ok" for s in recovered)

    def test_artifact_emitted(self, measured):
        path = RESULTS_DIR / "BENCH_chaos.json"
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["outcomes"]["WRONG"] == 0
        assert data["net_partition_timeouts"] >= 1

"""Legacy setuptools shim.

Offline environments without the ``wheel`` package cannot run the
PEP 517 editable install; ``python setup.py develop --user`` (or
``PYTHONPATH=src``) works everywhere. Configuration lives entirely in
``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Grid federation: two JClarens servers, the RLS, and runtime plug-in.

Demonstrates the distributed machinery of §4.5/§4.8/§4.10:

* tables hosted by *another* JClarens server are found through the
  central Replica Location Service and their sub-queries forwarded;
* remote servers process forwarded sub-queries concurrently with local
  work (fork/join on the virtual clock);
* a brand-new SQLite database is plugged in at runtime from its XSpec
  document and becomes queryable grid-wide.

Run: python examples/grid_federation.py
"""

from repro import Database, GridFederation, generate_lower_xspec, get_dialect


def main() -> None:
    fed = GridFederation()
    caltech = fed.create_server("jclarens-caltech", "grid.caltech.edu")
    cern = fed.create_server("jclarens-cern", "grid.cern.ch")

    # Caltech hosts the event mart.
    events = Database("events_mart", "mysql")
    events.execute(
        "CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT, ENERGY DOUBLE)"
    )
    for i in range(60):
        events.execute(f"INSERT INTO EVT VALUES ({i}, {i % 4}, {i * 2.5})")
    fed.attach_database(caltech, events, logical_names={"EVT": "events"})

    # CERN hosts calibration data in an MS SQL mart.
    calib = Database("calib_mart", "mssql")
    calib.execute("CREATE TABLE CAL (RUN_ID INT PRIMARY KEY, GAIN DOUBLE)")
    for r in range(4):
        calib.execute(f"INSERT INTO CAL VALUES ({r}, {1.0 + 0.05 * r})")
    fed.attach_database(cern, calib, logical_names={"CAL": "calibration"})

    print("RLS knows:", fed.rls_server.known_tables())

    client = fed.client("laptop.uwe.ac.uk")

    # The client talks only to Caltech; 'calibration' lives at CERN.
    # The data access layer looks it up in the RLS and forwards.
    print("== cross-server join (RLS + forwarding) ==")
    outcome = fed.query(
        client,
        caltech,
        "SELECT e.event_id, e.energy * c.gain AS calibrated "
        "FROM events e JOIN calibration c ON e.run_id = c.run_id "
        "WHERE e.event_id < 6 ORDER BY e.event_id",
    )
    for row in outcome.answer.rows:
        print(f"   event {row[0]}: calibrated energy {row[1]:.2f}")
    print(f"   servers accessed: {outcome.answer.servers_accessed}")
    print(f"   RLS lookups so far: {fed.rls_server.lookups}")
    print(f"   response: {outcome.response_ms:.1f} simulated ms")

    # Second run: the remote location is cached, no new RLS lookup.
    before = fed.rls_server.lookups
    fed.query(client, caltech, "SELECT COUNT(*) FROM calibration")
    print(f"   (repeat query used cached location: lookups still {fed.rls_server.lookups}"
          f" == {before})")

    # -- plug-in database at runtime (§4.10) -----------------------------------------
    print("== runtime plug-in of a laptop SQLite database ==")
    laptop_db = Database("scratch", "sqlite")
    laptop_db.execute("CREATE TABLE cuts (cut_id INTEGER PRIMARY KEY, expr TEXT)")
    laptop_db.execute("INSERT INTO cuts VALUES (1, 'energy > 50'), (2, 'run_id = 3')")
    url = get_dialect("sqlite").make_url("laptop.uwe.ac.uk", None, "scratch")
    fed.directory.register(url, laptop_db, host_name="laptop.uwe.ac.uk")
    spec_xml = generate_lower_xspec(laptop_db).to_xml()

    added = client.call(caltech.server, "dataaccess.plugin", spec_xml, url, "sqlite")
    print(f"   plugged in tables: {added}")
    outcome = fed.query(client, caltech, "SELECT expr FROM cuts ORDER BY cut_id")
    for (expr,) in outcome.answer.rows:
        print(f"   stored cut: {expr}")
    print("   RLS now knows:", fed.rls_server.known_tables())


if __name__ == "__main__":
    main()

"""Schema matching + federated EXPLAIN: the implemented §6 extensions.

Three sites store the *same* physics entities under different names and
vendors — the situation the paper's future-work note on "semantic
similarity" anticipates. The matcher proposes shared logical names; the
suggestions feed the data dictionary; and the federated EXPLAIN shows
exactly how a query over the unified namespace would be routed.

Run: python examples/schema_matching.py
"""

from repro import Database, GridFederation, generate_lower_xspec
from repro.metadata.semantic import find_matches, suggest_logical_names


def main() -> None:
    # Three sites, three naming conventions, three vendors.
    cern = Database("cern_oracle", "oracle")
    cern.execute(
        "CREATE TABLE EVENT_NTUPLE (EVT_KEY NUMBER(10,0), RUN_NUM NUMBER(10,0), "
        "ENE FLOAT)"
    )
    caltech = Database("caltech_mysql", "mysql")
    caltech.execute(
        "CREATE TABLE EVT (EVENT_ID INT, RUN_ID INT, ENERGY DOUBLE)"
    )
    fnal = Database("fnal_mssql", "mssql")
    fnal.execute(
        "CREATE TABLE EVENT_DATA (EVENT_ID INT, RUN_NO INT, ENERGY FLOAT)"
    )
    specs = [generate_lower_xspec(db) for db in (cern, caltech, fnal)]

    print("== pairwise table matches ==")
    for i in range(len(specs)):
        for j in range(i + 1, len(specs)):
            for match in find_matches(specs[i], specs[j]):
                print(
                    f"   {match.database_a}.{match.table_a} ~ "
                    f"{match.database_b}.{match.table_b}  score={match.score:.2f}"
                )
                for col in match.columns:
                    print(f"       {col.column_a} <-> {col.column_b} ({col.score:.2f})")

    print("== suggested shared logical names ==")
    suggestions = suggest_logical_names(specs)
    for s in suggestions:
        print(f"   '{s.logical_name}' for {s.members} (score {s.score:.2f})")

    # Feed the suggestion into a live federation.
    suggestion = suggestions[0]
    logical = suggestion.logical_name
    fed = GridFederation()
    server = fed.create_server("jclarens1", "pc1")
    for db in (cern, caltech, fnal):
        table = next(t for d, t in suggestion.members if d == db.name)
        # insert a little data so the query returns something
        cols = {"cern_oracle": "(1, 1, 47.5)", "caltech_mysql": "(2, 1, 51.0)",
                "fnal_mssql": "(3, 2, 39.0)"}[db.name]
        db.execute(f"INSERT INTO {table} VALUES {cols}")
        fed.attach_database(server, db, logical_names={table: logical})

    print(f"== all three sites now replicate logical table '{logical}' ==")
    locations = server.service.dictionary.locations(logical)
    for loc in locations:
        print(f"   {loc.database_name} [{loc.vendor}] physical={loc.physical_name}")

    print("== federated EXPLAIN ==")
    info = server.service.explain(f"SELECT COUNT(*) FROM {logical}")
    print(f"   plan kind: {info['kind']}; databases: {info['databases']}")
    for sub in info["subqueries"]:
        print(f"   {sub['binding']}: [{sub['route']}] {sub['sql']}")

    answer = server.service.execute(f"SELECT COUNT(*) FROM {logical}")
    print(f"== querying the first replica: {answer.rows[0][0]} event(s) ==")


if __name__ == "__main__":
    main()

"""Operations playbook: the production features layered on the prototype.

A tour for the person *running* the grid rather than querying it:
connection pooling, method ACLs, introspection, replica failover during
a database outage, a network partition and its recovery, and the
schema-polling loop — all observable through counters and the virtual
clock.

Run: python examples/operations.py
"""

from repro import Database, GridFederation
from repro.common import AuthenticationError, ConnectionFailedError


def make_mart(name, vendor="mysql", n=20):
    db = Database(name, vendor)
    db.execute("CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, ENERGY DOUBLE)")
    for i in range(n):
        db.execute(f"INSERT INTO EVT VALUES ({i}, {i * 2.0})")
    return db


def main() -> None:
    fed = GridFederation()
    # pooling on: the prototype's connect-per-query penalty disappears
    s1 = fed.create_server(
        "jc1", "pc1", jdbc_pooling=True, schema_poll_interval_ms=60_000
    )
    s2 = fed.create_server("jc2", "pc2")

    primary = make_mart("primary_mart", "mssql")  # JDBC path (no POOL-RAL)
    replica = make_mart("replica_mart", "sqlite")
    fed.attach_database(s1, primary, logical_names={"EVT": "events"})
    fed.attach_database(s2, replica, db_host="pc2", logical_names={"EVT": "events"})

    print("== connection pooling ==")
    for i in range(3):
        t0 = fed.clock.now_ms
        s1.service.execute("SELECT COUNT(*) FROM events")
        print(f"   query {i + 1}: {fed.clock.now_ms - t0:.1f} ms")
    stats = s1.service.router.jdbc_pool.stats
    print(f"   pool stats: hits={stats.hits} misses={stats.misses} "
          f"hit rate {stats.hit_rate:.0%}")

    print("== access control ==")
    s1.server.add_account("shift_crew", "pw", groups=("users",))
    reader = fed.client("controlroom", user="shift_crew", password="pw")
    print("   shift_crew can query:",
          fed.query(reader, s1, "SELECT COUNT(*) FROM events").answer.rows)
    try:
        reader.call(s1.server, "dataaccess.plugin", "<xspec/>", "url", "sqlite")
    except AuthenticationError as exc:
        print(f"   shift_crew cannot plugin: {exc}")

    print("== introspection ==")
    admin = fed.client("laptop")
    methods = admin.call(s1.server, "system.listMethods")
    print(f"   {len(methods)} callable methods, e.g. {methods[:4]}")

    print("== database outage: replica failover ==")
    url = s1.service.dictionary.url_for("primary_mart")
    fed.directory.unregister(url)
    print("   primary_mart process killed")
    answer = s1.service.execute("SELECT COUNT(*) FROM events")
    print(f"   query survived via the RLS replica on jc2: {answer.rows} "
          f"(routes: {answer.routes})")

    print("== network partition ==")
    fed.network.fail_link("pc1", "pc2")
    try:
        s1.service.execute("SELECT COUNT(*) FROM events")
    except ConnectionFailedError as exc:
        print(f"   during partition: {exc}")
    fed.network.restore_link("pc1", "pc2")
    print("   after healing:",
          s1.service.execute("SELECT COUNT(*) FROM events").rows)

    print("== schema polling (virtual time) ==")
    replica.execute("CREATE TABLE alarms (id INTEGER PRIMARY KEY)")
    s2.service.tracker.poll()  # jc2 notices its own database changed
    fed.clock.advance_ms(120_000)
    s1.service.execute("SELECT COUNT(*) FROM events")  # jc1's lazy poll fires
    print(f"   jc1 polls so far: {s1.service.tracker.polls}; "
          f"RLS now maps: {fed.rls_server.known_tables()}")

    print("== topology report ==")
    from repro.tools.topology import describe_federation

    print(describe_federation(fed))


if __name__ == "__main__":
    main()

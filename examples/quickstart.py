"""Quickstart: federate two vendor databases and run one cross-database join.

This is the smallest end-to-end use of the public API:

1. start a grid federation (virtual network + clock + RLS);
2. create a JClarens server with the data access service;
3. attach a MySQL mart and an MS SQL mart (heterogeneous vendors,
   different physical naming, shared logical namespace);
4. query by *logical* names from a lightweight client — including a
   join spanning both databases — and read back the merged 2-D vector.

Run: python examples/quickstart.py
"""

from repro import Database, GridFederation


def main() -> None:
    fed = GridFederation()
    server = fed.create_server("jclarens1", "pc1.example.org")

    # A MySQL mart with event data (upper-case physical names, as an
    # Oracle-bred DBA would make them).
    events = Database("events_mart", "mysql")
    events.execute(
        "CREATE TABLE EVT (EVENT_ID INT PRIMARY KEY, RUN_ID INT, ENERGY DOUBLE)"
    )
    for i in range(20):
        events.execute(f"INSERT INTO EVT VALUES ({i}, {i % 3}, {i * 1.5})")
    fed.attach_database(server, events, logical_names={"EVT": "events"})

    # An MS SQL mart with run metadata. POOL-RAL does not support this
    # vendor, so its sub-queries take the Unity/JDBC path automatically.
    runs = Database("runs_mart", "mssql")
    runs.execute(
        "CREATE TABLE RUN_INFO (RUN_ID INT PRIMARY KEY, DETECTOR NVARCHAR(20))"
    )
    for run_id, det in enumerate(["TRACKER", "ECAL", "MUON"]):
        runs.execute(f"INSERT INTO RUN_INFO VALUES ({run_id}, '{det}')")
    fed.attach_database(server, runs, logical_names={"RUN_INFO": "runs"})

    client = fed.client("laptop.example.org")

    print("== single-table query (POOL-RAL route) ==")
    outcome = fed.query(
        client, server, "SELECT event_id, energy FROM events WHERE energy > 20"
    )
    for row in outcome.answer.rows:
        print("  ", row)
    print(f"   response: {outcome.response_ms:.1f} simulated ms")

    print("== cross-database join (decomposed, merged) ==")
    outcome = fed.query(
        client,
        server,
        "SELECT r.detector, COUNT(*) AS n, AVG(e.energy) AS avg_e "
        "FROM events e JOIN runs r ON e.run_id = r.run_id "
        "GROUP BY r.detector ORDER BY n DESC",
    )
    print("  ", outcome.answer.columns)
    for row in outcome.answer.rows:
        print("  ", row)
    print(f"   distributed: {outcome.answer.distributed}")
    print(f"   response: {outcome.response_ms:.1f} simulated ms "
          f"(>10x the local query — the paper's Table 1 effect)")


if __name__ == "__main__":
    main()

"""Schema evolution: the XSpec tracker in action (§4.9).

The paper regenerates each database's XSpec periodically, compares size
then md5, and refreshes the server's metadata on any difference. Here a
source schema gains a column and a whole new table while the system is
live; a tracker poll detects both, the data dictionary refreshes, and
the new objects become queryable — including from a *different* server,
via the RLS republication.

Run: python examples/schema_evolution.py
"""

from repro import Database, GridFederation


def main() -> None:
    fed = GridFederation()
    s1 = fed.create_server("jclarens1", "pc1")
    s2 = fed.create_server("jclarens2", "pc2")

    db = Database("conditions_db", "mysql")
    db.execute("CREATE TABLE COND (COND_ID INT PRIMARY KEY, NAME VARCHAR(30))")
    db.execute("INSERT INTO COND VALUES (1, 'hv_setting'), (2, 'b_field')")
    fed.attach_database(s1, db, logical_names={"COND": "conditions"})

    spec = s1.service.tracker.current_spec("conditions_db")
    size, md5 = spec.fingerprint()
    print(f"initial XSpec: {len(spec.tables)} table(s), fingerprint {size} B / {md5[:12]}")

    print("== data growth is NOT a schema change ==")
    db.execute("INSERT INTO COND VALUES (3, 'temperature')")
    changed = s1.service.tracker.poll()
    print(f"   poll after INSERT: changed = {changed}")

    print("== ALTER TABLE is detected ==")
    db.execute("ALTER TABLE COND ADD COLUMN UNITS VARCHAR(12) DEFAULT 'SI'")
    changed = s1.service.tracker.poll()
    new_spec = s1.service.tracker.current_spec("conditions_db")
    nsize, nmd5 = new_spec.fingerprint()
    print(f"   poll after ALTER: changed = {changed}")
    print(f"   new fingerprint {nsize} B / {nmd5[:12]} (size differs -> md5 not even needed)")
    answer = s1.service.execute("SELECT name, units FROM conditions WHERE cond_id = 1")
    print(f"   new column immediately queryable: {answer.rows}")

    print("== a new table propagates grid-wide via the RLS ==")
    db.execute("CREATE TABLE ALARM (ALARM_ID INT PRIMARY KEY, SEVERITY INT)")
    db.execute("INSERT INTO ALARM VALUES (1, 3)")
    s1.service.tracker.poll()
    print(f"   RLS now maps: {fed.rls_server.known_tables()}")
    # server 2 never registered this database — it finds the table via RLS
    answer = s2.service.execute("SELECT severity FROM alarm WHERE alarm_id = 1")
    print(f"   queried from the other server: {answer.rows} "
          f"(routes: {answer.routes})")

    print("== the tracker's own counters ==")
    t = s1.service.tracker
    print(f"   polls: {t.polls}, changes detected: {t.changes_detected}")


if __name__ == "__main__":
    main()

"""HEP analysis pipeline: the paper's full data path, end to end.

1. generate HBOOK-style ntuples and store them in *normalized* source
   schemas on Oracle (Tier-1, CERN) and MySQL (Tier-2, Caltech);
2. ETL both sources into the Tier-0 Oracle warehouse (EAV rows pivoted
   into the denormalized star schema, staged through temp files);
3. materialize the warehouse's analysis views into MySQL / SQLite marts;
4. serve the marts from a JClarens server and run physics queries from
   a laptop client;
5. visualize a column as a JAS-style histogram.

Run: python examples/hep_analysis.py
"""

from repro import (
    Database,
    DeterministicRNG,
    GridFederation,
    JASPlugin,
    MartSet,
    Warehouse,
)
from repro.hep import build_tier_sources, etl_jobs_for_source

NVAR = 8


def main() -> None:
    rng = DeterministicRNG("hep-analysis")
    fed = GridFederation()
    fed.add_host("tier1.cern.ch", tier=1)
    fed.add_host("tier2.caltech.edu", tier=2)

    # -- 1. normalized sources --------------------------------------------------
    tier1, tier2 = build_tier_sources(rng, n_runs=6, events_per_run=120, nvar=NVAR)
    n_src = (
        tier1.execute("SELECT COUNT(*) FROM events").rows[0][0]
        + tier2.execute("SELECT COUNT(*) FROM events").rows[0][0]
    )
    print(f"sources: {n_src} events in normalized EAV schemas "
          f"({tier1.vendor} @ tier1, {tier2.vendor} @ tier2)")

    # -- 2. ETL into the warehouse ------------------------------------------------
    warehouse = Warehouse(fed.network, fed.clock, nvar=NVAR, wide_vars=4)
    for source, host in ((tier1, "tier1.cern.ch"), (tier2, "tier2.caltech.edu")):
        for job in etl_jobs_for_source(source, host, NVAR):
            report = warehouse.load(job)
            print(
                f"  ETL {source.name} -> {report.job_table}: {report.rows} rows, "
                f"{report.staged_kb:.1f} kB staged, extract {report.extraction_s:.2f} s, "
                f"load {report.loading_s:.2f} s"
            )
    print(f"warehouse fact rows: {warehouse.row_count('event_fact')}")

    # -- 3. materialize views into marts ---------------------------------------------
    marts = MartSet(warehouse)
    mysql_mart = Database("analysis_mart", "mysql")
    laptop_mart = Database("laptop_mart", "sqlite")
    marts.add_mart(mysql_mart, "pc1.caltech.edu")
    marts.add_mart(laptop_mart, "laptop.cern.ch")
    for report in marts.replicate(["v_event_wide", "v_run_summary", "v_calibration"]):
        print(f"  materialized {report.job_table}: {report.rows} rows, "
              f"load {report.loading_s:.2f} s")

    # -- 4. serve the mart on the grid -------------------------------------------------
    server = fed.create_server("jclarens1", "pc1.caltech.edu")
    fed.attach_database(server, mysql_mart, db_host="pc1.caltech.edu")
    client = fed.client("laptop.cern.ch")

    outcome = fed.query(
        client,
        server,
        "SELECT run_id, n_events, mean_var0 FROM v_run_summary ORDER BY run_id",
    )
    print("run summary (through the web-service interface):")
    for row in outcome.answer.rows:
        print(f"   run {row[0]}: {row[1]} events, <E> = {row[2]:.2f} GeV")
    print(f"   response: {outcome.response_ms:.1f} simulated ms")

    # -- 5. histogram a physics quantity --------------------------------------------------
    jas = JASPlugin(fed, client, server)
    hist = jas.histogram_query(
        "SELECT var_0 FROM v_event_wide WHERE var_0 < 200",
        column="var_0",
        nbins=20,
        low=0.0,
        high=200.0,
        title="Event energy (var_0 = E) from the mart",
    )
    print()
    print(hist.render(width=40))

    # -- 6. conditions data with intervals of validity -------------------------------------
    from repro.hep import ConditionsDB

    conditions = ConditionsDB(Database("conditions", "oracle"))
    conditions.store("hv_setting", 1500.0, valid_from=1, valid_to=3)
    conditions.store("hv_setting", 1480.0, valid_from=4)  # drifted mid-campaign
    conditions.store("b_field", 3.8, valid_from=1)
    fed.attach_database(server, conditions.db, db_host="pc1.caltech.edu")
    print()
    for run in (2, 5):
        snap = conditions.snapshot(run)
        print(f"conditions at run {run}: {snap}")
    # IOV lookups work over the grid too — it is ordinary SQL
    outcome = fed.query(
        client,
        server,
        "SELECT value FROM condition_iov WHERE name = 'hv_setting' "
        "AND 5 BETWEEN valid_from AND valid_to ORDER BY version DESC LIMIT 1",
    )
    print(f"grid lookup of hv_setting at run 5: {outcome.answer.rows[0][0]} V")

    # -- 7. the analysis note's cut-flow table ----------------------------------------------
    from repro.analysis import grid_cutflow

    flow = (
        grid_cutflow(fed, client, server, "v_event_wide")
        .add_cut("E > 20 GeV", "var_0 > 20")
        .add_cut("central eta", "var_1 BETWEEN -20 AND 20")
        .add_cut("good runs", "run_id <= 4")
    )
    print()
    print(flow.render())


if __name__ == "__main__":
    main()
